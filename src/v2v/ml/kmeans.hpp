// k-means clustering (paper §III): Lloyd's algorithm with k-means++
// seeding, repeated `restarts` times keeping the solution with the lowest
// within-cluster sum of squares. The paper uses 100 restarts.
//
// The assignment step runs one of three interchangeable engines (see
// docs/ARCHITECTURE.md "k-means engine"):
//
//   kNaive      — full O(n·k·d) sqdist scan; the parity oracle.
//   kNormCached — d² = ‖x‖² + ‖c‖² − 2⟨x,c⟩ on the SIMD dot path with a
//                 blocked point×centroid loop; near-ties fall back to the
//                 exact scan, so assignments and SSE are bit-identical to
//                 kNaive for a fixed seed.
//   kHamerly    — triangle-inequality pruning (per-point bounds + centroid
//                 drift) on top of the norm-cached scan; most points skip
//                 the k-way scan entirely after the first few iterations.
//                 Also exact: the bound test only ever *skips* the scan
//                 when the incumbent centroid provably wins it.
//
// All engines share one deterministic accumulation scheme (fixed-grain
// chunked SSE, posting-list centroid update), so results are bit-identical
// across engines AND across thread counts for a fixed seed.
#pragma once

#include <cstdint>
#include <vector>

#include "v2v/common/matrix.hpp"

namespace v2v::obs {
class MetricsRegistry;
}  // namespace v2v::obs

namespace v2v::ml {

enum class KMeansSeeding : std::uint8_t { kPlusPlus, kUniform };

/// Assignment-step engine. All three produce identical assignments and
/// SSE for a fixed seed (kNaive is the oracle the others are tested
/// against); they differ only in how many distances they evaluate.
enum class KMeansAssign : std::uint8_t { kNaive, kNormCached, kHamerly };

[[nodiscard]] const char* assign_mode_name(KMeansAssign mode) noexcept;

struct KMeansConfig {
  std::size_t k = 10;
  std::size_t max_iterations = 100;   ///< Lloyd iterations per restart
  std::size_t restarts = 100;         ///< paper default
  KMeansSeeding seeding = KMeansSeeding::kPlusPlus;
  double tolerance = 1e-6;            ///< relative SSE improvement to keep iterating
  std::uint64_t seed = 1;
  /// Worker budget. When restarts >= threads the restarts themselves run
  /// in parallel (each Lloyd run serial); otherwise restarts run
  /// sequentially and each Lloyd run parallelizes its assignment/update
  /// steps over points. Either way the result is bit-identical to
  /// threads == 1.
  std::size_t threads = 1;
  KMeansAssign assign = KMeansAssign::kHamerly;
  /// Optional observability sink: kmeans() records an iterations-per-
  /// restart histogram, the per-restart SSE trajectory, distance-eval /
  /// pruning counters, per-step timing gauges, and a "kmeans" stage span
  /// into it. Null (default) disables instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
};

struct KMeansResult {
  std::vector<std::uint32_t> assignment;  ///< cluster id per point
  MatrixD centroids;                      ///< k x d
  double sse = 0.0;                       ///< sum of squared distances to centroids
  std::size_t iterations = 0;             ///< Lloyd iterations of the winning restart
  std::size_t restarts_run = 0;
};

/// Clusters the rows of `points`. Empty clusters are re-seeded with the
/// point farthest from its (pre-update) centroid, so exactly k clusters
/// are returned whenever k <= #points. Throws std::invalid_argument for
/// k == 0 or k > #points.
[[nodiscard]] KMeansResult kmeans(const MatrixF& points, const KMeansConfig& config);

/// One-shot nearest-centroid assignment of every row of `points` against
/// `centroids` (the IVF build/quantization path). Uses the same exact
/// norm-cached scan as the Lloyd engine — bit-identical to a naive
/// sqdist argmin with lowest-index tie-breaking — chunked over `threads`
/// workers deterministically. kNaive forces the plain scan (oracle).
[[nodiscard]] std::vector<std::uint32_t> assign_to_centroids(
    const MatrixF& points, const MatrixD& centroids, std::size_t threads,
    KMeansAssign assign = KMeansAssign::kNormCached);

/// SSE of an assignment against given centroids (for tests/validation).
[[nodiscard]] double kmeans_sse(const MatrixF& points,
                                const std::vector<std::uint32_t>& assignment,
                                const MatrixD& centroids);

}  // namespace v2v::ml
