// Clustering/classification quality metrics.
//
// The paper evaluates community detection with *pairwise* precision and
// recall (§III-B): a pair of vertices is a true positive when it shares
// both a ground-truth community and a predicted cluster. Both metrics are
// computed in O(n + #distinct cells) from the contingency table using
// "pairs = sum over cells of C(cell, 2)" identities — never by enumerating
// the O(n^2) pairs. NMI / ARI / purity are provided as extensions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace v2v::ml {

struct PairCounts {
  std::uint64_t same_both = 0;     ///< pairs together in truth and prediction
  std::uint64_t same_truth = 0;    ///< pairs together in ground truth
  std::uint64_t same_predicted = 0;///< pairs together in prediction
  std::uint64_t total_pairs = 0;   ///< C(n, 2)
};

[[nodiscard]] PairCounts count_pairs(std::span<const std::uint32_t> truth,
                                     std::span<const std::uint32_t> predicted);

struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  [[nodiscard]] double f1() const {
    const double s = precision + recall;
    return s > 0.0 ? 2.0 * precision * recall / s : 0.0;
  }
};

/// Pairwise precision/recall per the paper's definition. Conventions for
/// degenerate cases: if no pair is predicted together, precision = 1; if
/// no pair is together in the truth, recall = 1.
[[nodiscard]] PrecisionRecall pairwise_precision_recall(
    std::span<const std::uint32_t> truth, std::span<const std::uint32_t> predicted);

/// Adjusted Rand Index in [-1, 1]; 1 = identical partitions.
[[nodiscard]] double adjusted_rand_index(std::span<const std::uint32_t> truth,
                                         std::span<const std::uint32_t> predicted);

/// Normalized Mutual Information in [0, 1] (arithmetic-mean normalization).
[[nodiscard]] double normalized_mutual_information(
    std::span<const std::uint32_t> truth, std::span<const std::uint32_t> predicted);

/// Fraction of points whose cluster's majority truth label matches theirs.
[[nodiscard]] double purity(std::span<const std::uint32_t> truth,
                            std::span<const std::uint32_t> predicted);

/// Plain classification accuracy.
[[nodiscard]] double accuracy(std::span<const std::uint32_t> truth,
                              std::span<const std::uint32_t> predicted);

}  // namespace v2v::ml
