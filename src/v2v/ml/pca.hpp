// Principal Component Analysis (paper §IV): mean-center, form the d x d
// covariance matrix, diagonalize it with a cyclic Jacobi eigensolver, and
// project onto the leading eigenvectors. Exact and dependency-free; d is
// at most ~1000 in all V2V experiments, so O(d^3) is fine.
#pragma once

#include <cstddef>
#include <vector>

#include "v2v/common/matrix.hpp"

namespace v2v::ml {

class Pca {
 public:
  /// Fits on the rows of `points`. Throws on empty input.
  explicit Pca(const MatrixF& points);

  [[nodiscard]] std::size_t dimensions() const noexcept { return mean_.size(); }

  /// Eigenvalues of the covariance matrix, descending; size = d.
  [[nodiscard]] const std::vector<double>& eigenvalues() const noexcept {
    return eigenvalues_;
  }

  /// Component c as a unit vector (row c of the rotation), c < d.
  [[nodiscard]] std::vector<double> component(std::size_t c) const;

  /// Fraction of total variance captured by the first `count` components.
  [[nodiscard]] double explained_variance(std::size_t count) const;

  /// Projects rows of `points` onto the first `components` principal axes.
  [[nodiscard]] MatrixD transform(const MatrixF& points, std::size_t components) const;

 private:
  std::vector<double> mean_;
  std::vector<double> eigenvalues_;   // descending
  MatrixD components_;                // row i = i-th principal axis
};

/// Symmetric eigendecomposition by cyclic Jacobi rotations. `matrix` is a
/// dense symmetric d x d; returns (eigenvalues, eigenvectors-as-rows)
/// sorted by descending eigenvalue. Exposed for testing.
struct EigenDecomposition {
  std::vector<double> values;
  MatrixD vectors;  // row i corresponds to values[i]
};
[[nodiscard]] EigenDecomposition jacobi_eigen_symmetric(MatrixD matrix,
                                                        std::size_t max_sweeps = 64,
                                                        double tolerance = 1e-12);

}  // namespace v2v::ml
