#include "v2v/ml/silhouette.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "v2v/common/vec_math.hpp"
#include "v2v/ml/kmeans.hpp"

namespace v2v::ml {

std::vector<double> silhouette_samples(const MatrixF& points,
                                       std::span<const std::uint32_t> assignment) {
  const std::size_t n = points.rows();
  if (assignment.size() != n) {
    throw std::invalid_argument("silhouette: assignment size mismatch");
  }
  std::uint32_t k = 0;
  for (const auto c : assignment) k = std::max(k, c + 1);
  std::vector<std::size_t> cluster_size(k, 0);
  for (const auto c : assignment) ++cluster_size[c];

  std::vector<double> samples(n, 0.0);
  std::vector<double> mean_to_cluster(k);
  for (std::size_t i = 0; i < n; ++i) {
    if (cluster_size[assignment[i]] <= 1) continue;  // singleton: s = 0
    std::fill(mean_to_cluster.begin(), mean_to_cluster.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double d = std::sqrt(squared_distance(
          std::span<const float>(points.row(i)), std::span<const float>(points.row(j))));
      mean_to_cluster[assignment[j]] += d;
    }
    const std::uint32_t own = assignment[i];
    double a = mean_to_cluster[own] / static_cast<double>(cluster_size[own] - 1);
    double b = std::numeric_limits<double>::max();
    for (std::uint32_t c = 0; c < k; ++c) {
      if (c == own || cluster_size[c] == 0) continue;
      b = std::min(b, mean_to_cluster[c] / static_cast<double>(cluster_size[c]));
    }
    if (b == std::numeric_limits<double>::max()) continue;  // single cluster
    const double denom = std::max(a, b);
    samples[i] = denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return samples;
}

double silhouette_score(const MatrixF& points,
                        std::span<const std::uint32_t> assignment) {
  const auto samples = silhouette_samples(points, assignment);
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

KSelection select_k_by_silhouette(const MatrixF& points, std::size_t k_min,
                                  std::size_t k_max, std::size_t restarts,
                                  std::uint64_t seed, std::size_t threads) {
  if (k_min < 2) throw std::invalid_argument("select_k: k_min must be >= 2");
  if (k_max < k_min) throw std::invalid_argument("select_k: k_max < k_min");
  if (k_max > points.rows()) {
    throw std::invalid_argument("select_k: k_max exceeds number of points");
  }
  KSelection selection;
  double best = -2.0;
  for (std::size_t k = k_min; k <= k_max; ++k) {
    KMeansConfig config;
    config.k = k;
    config.restarts = restarts;
    config.seed = seed + k;
    config.threads = threads;
    const auto clusters = kmeans(points, config);
    const double score = silhouette_score(points, clusters.assignment);
    selection.scores.emplace_back(k, score);
    if (score > best) {
      best = score;
      selection.best_k = k;
    }
  }
  return selection;
}

}  // namespace v2v::ml
