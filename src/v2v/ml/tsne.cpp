#include "v2v/ml/tsne.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "v2v/common/rng.hpp"
#include "v2v/common/vec_math.hpp"

namespace v2v::ml {
namespace {

/// Pairwise squared Euclidean distances between rows.
MatrixD pairwise_sqdist(const MatrixF& points) {
  const std::size_t n = points.rows();
  MatrixD d2(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = squared_distance(std::span<const float>(points.row(i)),
                                        std::span<const float>(points.row(j)));
      d2(i, j) = d;
      d2(j, i) = d;
    }
  }
  return d2;
}

/// Calibrates row i's Gaussian bandwidth so the conditional distribution
/// has the requested perplexity; writes p_{j|i} into row i of `p`.
void calibrate_row(const MatrixD& d2, std::size_t i, double perplexity, MatrixD& p) {
  const std::size_t n = d2.rows();
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_lo = 0.0, beta_hi = std::numeric_limits<double>::max();

  for (int iter = 0; iter < 64; ++iter) {
    double sum = 0.0, weighted = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double w = std::exp(-beta * d2(i, j));
      p(i, j) = w;
      sum += w;
      weighted += w * d2(i, j);
    }
    if (sum <= 0.0) {
      // All neighbors infinitely far at this beta; soften and retry.
      beta /= 10.0;
      continue;
    }
    const double entropy = std::log(sum) + beta * weighted / sum;
    const double diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-5) break;
    if (diff > 0) {  // entropy too high -> sharpen
      beta_lo = beta;
      beta = beta_hi == std::numeric_limits<double>::max() ? beta * 2 : (beta + beta_hi) / 2;
    } else {
      beta_hi = beta;
      beta = (beta + beta_lo) / 2;
    }
  }
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (j != i) sum += p(i, j);
  }
  const double inv = sum > 0 ? 1.0 / sum : 0.0;
  for (std::size_t j = 0; j < n; ++j) p(i, j) = j == i ? 0.0 : p(i, j) * inv;
}

}  // namespace

TsneResult tsne_2d(const MatrixF& points, const TsneConfig& config) {
  const std::size_t n = points.rows();
  if (n == 0) throw std::invalid_argument("tsne: empty input");
  if (n < 4) throw std::invalid_argument("tsne: need at least 4 points");
  if (config.perplexity * 3.0 >= static_cast<double>(n)) {
    throw std::invalid_argument("tsne: perplexity too large for n");
  }

  // High-dimensional affinities: symmetrized conditional Gaussians.
  const MatrixD d2 = pairwise_sqdist(points);
  MatrixD p(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) calibrate_row(d2, i, config.perplexity, p);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double sym = std::max((p(i, j) + p(j, i)) / (2.0 * static_cast<double>(n)),
                                  1e-12);
      p(i, j) = sym;
      p(j, i) = sym;
    }
    p(i, i) = 0.0;
  }

  // Init: small Gaussian cloud.
  Rng rng(config.seed);
  std::vector<double> y(2 * n), velocity(2 * n, 0.0), gains(2 * n, 1.0);
  for (auto& coord : y) coord = rng.next_gaussian() * 1e-2;

  std::vector<double> q_num(n * n);  // Student-t numerators
  std::vector<double> grad(2 * n);
  TsneResult result;

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.exaggeration_iters ? config.early_exaggeration : 1.0;

    // Low-dimensional affinities (Student t, dof 1).
    double q_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      q_num[i * n + i] = 0.0;
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dx = y[2 * i] - y[2 * j];
        const double dy = y[2 * i + 1] - y[2 * j + 1];
        const double num = 1.0 / (1.0 + dx * dx + dy * dy);
        q_num[i * n + j] = num;
        q_num[j * n + i] = num;
        q_sum += 2.0 * num;
      }
    }
    q_sum = std::max(q_sum, 1e-12);

    // Gradient: 4 * sum_j (exagg*p_ij - q_ij) * num_ij * (y_i - y_j).
    std::fill(grad.begin(), grad.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double num = q_num[i * n + j];
        const double q = num / q_sum;
        const double mult = (exaggeration * p(i, j) - q) * num;
        grad[2 * i] += 4.0 * mult * (y[2 * i] - y[2 * j]);
        grad[2 * i + 1] += 4.0 * mult * (y[2 * i + 1] - y[2 * j + 1]);
      }
    }

    // Momentum update with per-coordinate adaptive gains.
    const double momentum =
        iter < config.momentum_switch ? config.momentum : config.final_momentum;
    for (std::size_t c = 0; c < 2 * n; ++c) {
      const bool same_sign = (grad[c] > 0) == (velocity[c] > 0);
      gains[c] = same_sign ? std::max(gains[c] * 0.8, 0.01) : gains[c] + 0.2;
      velocity[c] = momentum * velocity[c] - config.learning_rate * gains[c] * grad[c];
      y[c] += velocity[c];
    }

    // Re-center to keep the solution bounded.
    double mean_x = 0.0, mean_y = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mean_x += y[2 * i];
      mean_y += y[2 * i + 1];
    }
    mean_x /= static_cast<double>(n);
    mean_y /= static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      y[2 * i] -= mean_x;
      y[2 * i + 1] -= mean_y;
    }
  }

  // Final KL divergence (without exaggeration).
  double q_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) q_sum += 2.0 * q_num[i * n + j];
  }
  q_sum = std::max(q_sum, 1e-12);
  double kl = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double q = std::max(q_num[i * n + j] / q_sum, 1e-12);
      kl += p(i, j) * std::log(p(i, j) / q);
    }
  }
  result.kl_divergence = kl;

  result.positions.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.positions[i] = {y[2 * i], y[2 * i + 1]};
  }
  return result;
}

}  // namespace v2v::ml
