#include "v2v/ml/metrics.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace v2v::ml {
namespace {

std::uint64_t choose2(std::uint64_t n) { return n * (n - 1) / 2; }

struct Contingency {
  std::unordered_map<std::uint64_t, std::uint64_t> cells;  // (truth, pred) -> count
  std::unordered_map<std::uint32_t, std::uint64_t> truth_sizes;
  std::unordered_map<std::uint32_t, std::uint64_t> pred_sizes;
  std::uint64_t n = 0;
};

Contingency build_contingency(std::span<const std::uint32_t> truth,
                              std::span<const std::uint32_t> predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("metrics: label vectors differ in size");
  }
  Contingency t;
  t.n = truth.size();
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(truth[i]) << 32) | predicted[i];
    ++t.cells[key];
    ++t.truth_sizes[truth[i]];
    ++t.pred_sizes[predicted[i]];
  }
  return t;
}

}  // namespace

PairCounts count_pairs(std::span<const std::uint32_t> truth,
                       std::span<const std::uint32_t> predicted) {
  const Contingency t = build_contingency(truth, predicted);
  PairCounts counts;
  counts.total_pairs = choose2(t.n);
  for (const auto& [key, size] : t.cells) counts.same_both += choose2(size);
  for (const auto& [label, size] : t.truth_sizes) counts.same_truth += choose2(size);
  for (const auto& [label, size] : t.pred_sizes) counts.same_predicted += choose2(size);
  return counts;
}

PrecisionRecall pairwise_precision_recall(std::span<const std::uint32_t> truth,
                                          std::span<const std::uint32_t> predicted) {
  const PairCounts c = count_pairs(truth, predicted);
  PrecisionRecall pr;
  pr.precision = c.same_predicted > 0
                     ? static_cast<double>(c.same_both) / static_cast<double>(c.same_predicted)
                     : 1.0;
  pr.recall = c.same_truth > 0
                  ? static_cast<double>(c.same_both) / static_cast<double>(c.same_truth)
                  : 1.0;
  return pr;
}

double adjusted_rand_index(std::span<const std::uint32_t> truth,
                           std::span<const std::uint32_t> predicted) {
  const PairCounts c = count_pairs(truth, predicted);
  if (c.total_pairs == 0) return 1.0;
  const double index = static_cast<double>(c.same_both);
  const double expected = static_cast<double>(c.same_truth) *
                          static_cast<double>(c.same_predicted) /
                          static_cast<double>(c.total_pairs);
  const double max_index =
      0.5 * (static_cast<double>(c.same_truth) + static_cast<double>(c.same_predicted));
  const double denom = max_index - expected;
  if (denom == 0.0) return index == expected ? 1.0 : 0.0;
  return (index - expected) / denom;
}

double normalized_mutual_information(std::span<const std::uint32_t> truth,
                                     std::span<const std::uint32_t> predicted) {
  const Contingency t = build_contingency(truth, predicted);
  if (t.n == 0) return 1.0;
  const double n = static_cast<double>(t.n);

  auto entropy = [&](const std::unordered_map<std::uint32_t, std::uint64_t>& sizes) {
    double h = 0.0;
    for (const auto& [label, size] : sizes) {
      const double p = static_cast<double>(size) / n;
      if (p > 0.0) h -= p * std::log(p);
    }
    return h;
  };
  const double h_truth = entropy(t.truth_sizes);
  const double h_pred = entropy(t.pred_sizes);

  double mi = 0.0;
  for (const auto& [key, size] : t.cells) {
    const auto truth_label = static_cast<std::uint32_t>(key >> 32);
    const auto pred_label = static_cast<std::uint32_t>(key & 0xffffffffu);
    const double pij = static_cast<double>(size) / n;
    const double pi = static_cast<double>(t.truth_sizes.at(truth_label)) / n;
    const double pj = static_cast<double>(t.pred_sizes.at(pred_label)) / n;
    mi += pij * std::log(pij / (pi * pj));
  }
  const double norm = 0.5 * (h_truth + h_pred);
  if (norm <= 0.0) return 1.0;  // both partitions trivial
  return mi / norm;
}

double purity(std::span<const std::uint32_t> truth,
              std::span<const std::uint32_t> predicted) {
  const Contingency t = build_contingency(truth, predicted);
  if (t.n == 0) return 1.0;
  // For each predicted cluster, take its largest cell.
  std::unordered_map<std::uint32_t, std::uint64_t> best;
  for (const auto& [key, size] : t.cells) {
    const auto pred_label = static_cast<std::uint32_t>(key & 0xffffffffu);
    auto& slot = best[pred_label];
    slot = std::max(slot, size);
  }
  std::uint64_t correct = 0;
  for (const auto& [label, size] : best) correct += size;
  return static_cast<double>(correct) / static_cast<double>(t.n);
}

double accuracy(std::span<const std::uint32_t> truth,
                std::span<const std::uint32_t> predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("metrics: label vectors differ in size");
  }
  if (truth.empty()) return 1.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    correct += truth[i] == predicted[i] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace v2v::ml
