#include "v2v/ml/crossval.hpp"

#include <numeric>
#include <stdexcept>

namespace v2v::ml {

std::vector<Fold> make_kfold(std::size_t n, std::size_t folds, Rng& rng) {
  if (folds < 2) throw std::invalid_argument("kfold: need >= 2 folds");
  if (n < folds) throw std::invalid_argument("kfold: fewer samples than folds");

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::vector<Fold> out(folds);
  const std::size_t base = n / folds;
  const std::size_t extra = n % folds;
  std::size_t cursor = 0;
  for (std::size_t f = 0; f < folds; ++f) {
    const std::size_t len = base + (f < extra ? 1 : 0);
    out[f].test.assign(order.begin() + static_cast<std::ptrdiff_t>(cursor),
                       order.begin() + static_cast<std::ptrdiff_t>(cursor + len));
    cursor += len;
  }
  for (std::size_t f = 0; f < folds; ++f) {
    out[f].train.reserve(n - out[f].test.size());
    for (std::size_t g = 0; g < folds; ++g) {
      if (g == f) continue;
      out[f].train.insert(out[f].train.end(), out[g].test.begin(), out[g].test.end());
    }
  }
  return out;
}

}  // namespace v2v::ml
