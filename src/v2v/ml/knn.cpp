#include "v2v/ml/knn.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "v2v/common/vec_math.hpp"

namespace v2v::ml {

KnnClassifier::KnnClassifier(const MatrixF& points, std::vector<std::uint32_t> labels,
                             DistanceMetric metric)
    : points_(points), labels_(std::move(labels)), metric_(metric) {
  if (points_.rows() != labels_.size()) {
    throw std::invalid_argument("knn: points/labels size mismatch");
  }
  if (points_.rows() == 0) throw std::invalid_argument("knn: empty training set");
}

KnnClassifier::KnnClassifier(const MatrixF& points, std::span<const std::size_t> rows,
                             std::span<const std::uint32_t> labels,
                             DistanceMetric metric)
    : points_(rows.size(), points.cols()), metric_(metric) {
  if (rows.empty()) throw std::invalid_argument("knn: empty training set");
  labels_.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto src = points.row(rows[i]);
    auto dst = points_.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
    labels_.push_back(labels[rows[i]]);
  }
}

std::uint32_t KnnClassifier::predict(std::span<const float> query, std::size_t k) const {
  if (k == 0) throw std::invalid_argument("knn: k == 0");
  k = std::min(k, points_.rows());

  // Collect the k smallest distances with a partial sort over a scratch
  // array of (distance, index).
  thread_local std::vector<std::pair<double, std::size_t>> scored;
  scored.clear();
  scored.reserve(points_.rows());
  for (std::size_t i = 0; i < points_.rows(); ++i) {
    const double d = metric_ == DistanceMetric::kCosine
                         ? cosine_distance(query, std::span<const float>(points_.row(i)))
                         : squared_distance(query, std::span<const float>(points_.row(i)));
    scored.emplace_back(d, i);
  }
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
                    scored.end());

  // Majority vote; ties resolve to the tied label with the nearest voter,
  // which is also the first encountered since voters are distance-sorted.
  std::unordered_map<std::uint32_t, std::size_t> votes;
  std::uint32_t best_label = labels_[scored[0].second];
  std::size_t best_votes = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t label = labels_[scored[i].second];
    const std::size_t v = ++votes[label];
    if (v > best_votes) {
      best_votes = v;
      best_label = label;
    }
  }
  return best_label;
}

std::vector<std::uint32_t> KnnClassifier::predict_rows(
    const MatrixF& points, std::span<const std::size_t> rows, std::size_t k) const {
  std::vector<std::uint32_t> out;
  out.reserve(rows.size());
  for (const std::size_t r : rows) {
    out.push_back(predict(points.row(r), k));
  }
  return out;
}

}  // namespace v2v::ml
