// k-fold cross-validation splits (paper §V uses 10-fold CV, repeated 10
// times with the average reported).
#pragma once

#include <cstdint>
#include <vector>

#include "v2v/common/rng.hpp"

namespace v2v::ml {

struct Fold {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Shuffles [0, n) and cuts it into `folds` near-equal parts. Every index
/// appears in exactly one test set; folds differ in size by at most 1.
[[nodiscard]] std::vector<Fold> make_kfold(std::size_t n, std::size_t folds, Rng& rng);

}  // namespace v2v::ml
