#include "v2v/ml/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "v2v/common/kernels.hpp"

namespace v2v::ml {

EigenDecomposition jacobi_eigen_symmetric(MatrixD a, std::size_t max_sweeps,
                                          double tolerance) {
  const std::size_t d = a.rows();
  if (d == 0 || a.cols() != d) {
    throw std::invalid_argument("jacobi: matrix must be square and non-empty");
  }
  MatrixD v(d, d, 0.0);
  for (std::size_t i = 0; i < d; ++i) v(i, i) = 1.0;

  auto off_diagonal_norm = [&] {
    double sum = 0.0;
    for (std::size_t p = 0; p < d; ++p) {
      for (std::size_t q = p + 1; q < d; ++q) sum += a(p, q) * a(p, q);
    }
    return std::sqrt(sum);
  };

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tolerance) break;
    for (std::size_t p = 0; p < d; ++p) {
      for (std::size_t q = p + 1; q < d; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= tolerance * 1e-3) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t i = 0; i < d; ++i) {
          const double aip = a(i, p);
          const double aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < d; ++i) {
          const double api = a(p, i);
          const double aqi = a(q, i);
          a(p, i) = c * api - s * aqi;
          a(q, i) = s * api + c * aqi;
        }
        for (std::size_t i = 0; i < d; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  EigenDecomposition out;
  out.values.resize(d);
  std::vector<std::size_t> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(d);
  for (std::size_t i = 0; i < d; ++i) diag[i] = a(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });
  out.vectors = MatrixD(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    out.values[r] = diag[order[r]];
    for (std::size_t i = 0; i < d; ++i) out.vectors(r, i) = v(i, order[r]);
  }
  return out;
}

Pca::Pca(const MatrixF& points) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  if (n == 0 || d == 0) throw std::invalid_argument("pca: empty input");

  mean_.assign(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    kernels::add_fd(points.row(r).data(), mean_.data(), d);
  }
  kernels::scale_d(mean_.data(), 1.0 / static_cast<double>(n), d);

  MatrixD cov(d, d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = points.row(r);
    for (std::size_t i = 0; i < d; ++i) {
      const double xi = row[i] - mean_[i];
      for (std::size_t j = i; j < d; ++j) {
        cov(i, j) += xi * (row[j] - mean_[j]);
      }
    }
  }
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  }

  auto eig = jacobi_eigen_symmetric(std::move(cov));
  eigenvalues_ = std::move(eig.values);
  components_ = std::move(eig.vectors);
  // Clamp tiny negative eigenvalues from rounding.
  for (auto& v : eigenvalues_) v = std::max(v, 0.0);
}

std::vector<double> Pca::component(std::size_t c) const {
  if (c >= components_.rows()) throw std::out_of_range("pca: component index");
  const auto row = components_.row(c);
  return {row.begin(), row.end()};
}

double Pca::explained_variance(std::size_t count) const {
  const double total = std::accumulate(eigenvalues_.begin(), eigenvalues_.end(), 0.0);
  if (total <= 0.0) return 0.0;
  count = std::min(count, eigenvalues_.size());
  const double head = std::accumulate(eigenvalues_.begin(),
                                      eigenvalues_.begin() + static_cast<std::ptrdiff_t>(count), 0.0);
  return head / total;
}

MatrixD Pca::transform(const MatrixF& points, std::size_t components) const {
  if (points.cols() != dimensions()) {
    throw std::invalid_argument("pca: dimension mismatch in transform");
  }
  components = std::min(components, components_.rows());
  MatrixD out(points.rows(), components);
  for (std::size_t r = 0; r < points.rows(); ++r) {
    const auto row = points.row(r);
    for (std::size_t c = 0; c < components; ++c) {
      const auto axis = components_.row(c);
      double sum = 0.0;
      for (std::size_t i = 0; i < dimensions(); ++i) {
        sum += (row[i] - mean_[i]) * axis[i];
      }
      out(r, c) = sum;
    }
  }
  return out;
}

}  // namespace v2v::ml
