// t-SNE (van der Maaten & Hinton 2008) — the second visualization method
// the paper cites (§I) next to PCA. Exact O(n^2) implementation with the
// standard refinements: binary-search perplexity calibration, symmetrized
// affinities, early exaggeration, and momentum gradient descent. Intended
// for the paper-scale inputs (a few thousand points).
#pragma once

#include <cstdint>
#include <vector>

#include "v2v/common/matrix.hpp"
#include "v2v/common/point.hpp"

namespace v2v::ml {

struct TsneConfig {
  double perplexity = 30.0;       ///< effective number of neighbors
  std::size_t iterations = 500;
  double learning_rate = 200.0;
  double early_exaggeration = 12.0;
  std::size_t exaggeration_iters = 100;
  double momentum = 0.5;          ///< switches to final_momentum later
  double final_momentum = 0.8;
  std::size_t momentum_switch = 250;
  std::uint64_t seed = 1;
};

struct TsneResult {
  std::vector<Point2> positions;
  double kl_divergence = 0.0;     ///< final objective value
};

/// Embeds the rows of `points` into 2-D. Throws std::invalid_argument for
/// empty input or perplexity >= n/3 (the calibration would be degenerate).
[[nodiscard]] TsneResult tsne_2d(const MatrixF& points, const TsneConfig& config = {});

}  // namespace v2v::ml
