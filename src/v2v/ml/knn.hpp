// k-nearest-neighbor classification (paper §V): majority vote among the k
// closest training vectors under cosine (default) or Euclidean distance.
// Brute-force search — exact, and fast enough at the paper's scales.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "v2v/common/matrix.hpp"

namespace v2v::ml {

enum class DistanceMetric : std::uint8_t { kCosine, kEuclidean };

class KnnClassifier {
 public:
  /// Stores (a copy of) the training rows and their labels.
  KnnClassifier(const MatrixF& points, std::vector<std::uint32_t> labels,
                DistanceMetric metric = DistanceMetric::kCosine);

  /// Fit from selected rows of a larger matrix (used by cross-validation).
  KnnClassifier(const MatrixF& points, std::span<const std::size_t> rows,
                std::span<const std::uint32_t> labels,
                DistanceMetric metric = DistanceMetric::kCosine);

  /// Majority vote among the k nearest training points. Vote ties break
  /// toward the label whose voter is nearest (word2vec k=1 behaviour when
  /// all k labels are distinct).
  [[nodiscard]] std::uint32_t predict(std::span<const float> query, std::size_t k) const;

  [[nodiscard]] std::vector<std::uint32_t> predict_rows(const MatrixF& points,
                                                        std::span<const std::size_t> rows,
                                                        std::size_t k) const;

  [[nodiscard]] std::size_t train_size() const noexcept { return labels_.size(); }

 private:
  MatrixF points_;
  std::vector<std::uint32_t> labels_;
  DistanceMetric metric_;
};

}  // namespace v2v::ml
