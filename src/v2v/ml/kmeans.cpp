#include "v2v/ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>

#include "v2v/common/check.hpp"
#include "v2v/common/kernels.hpp"
#include "v2v/common/rng.hpp"
#include "v2v/common/thread_pool.hpp"
#include "v2v/obs/metrics.hpp"

namespace v2v::ml {
namespace {

double point_centroid_sqdist(std::span<const float> p, std::span<const double> c) {
  return kernels::sqdist_fd(p.data(), c.data(), p.size());
}

MatrixD seed_uniform(const MatrixF& points, std::size_t k, Rng& rng) {
  const auto chosen = [&] {
    // Distinct rows via partial Fisher-Yates over indices.
    std::vector<std::size_t> idx(points.rows());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + rng.next_below(idx.size() - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }();
  MatrixD centroids(k, points.cols());
  for (std::size_t c = 0; c < k; ++c) {
    const auto row = points.row(chosen[c]);
    for (std::size_t i = 0; i < points.cols(); ++i) centroids(c, i) = row[i];
  }
  return centroids;
}

MatrixD seed_plus_plus(const MatrixF& points, std::size_t k, Rng& rng) {
  const std::size_t n = points.rows();
  MatrixD centroids(k, points.cols());
  std::vector<double> dist2(n, std::numeric_limits<double>::max());

  std::size_t first = rng.next_below(n);
  for (std::size_t i = 0; i < points.cols(); ++i) {
    centroids(0, i) = points(first, i);
  }
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      const double d = point_centroid_sqdist(points.row(p), centroids.row(c - 1));
      dist2[p] = std::min(dist2[p], d);
      total += dist2[p];
    }
    std::size_t pick = 0;
    if (total > 0.0) {
      const double target = rng.next_double() * total;
      double acc = 0.0;
      for (std::size_t p = 0; p < n; ++p) {
        acc += dist2[p];
        if (acc >= target) {
          pick = p;
          break;
        }
      }
    } else {
      pick = rng.next_below(n);  // all points identical to current centers
    }
    for (std::size_t i = 0; i < points.cols(); ++i) centroids(c, i) = points(pick, i);
  }
  return centroids;
}

struct LloydOutcome {
  std::vector<std::uint32_t> assignment;
  MatrixD centroids;
  double sse = 0.0;
  std::size_t iterations = 0;
};

LloydOutcome lloyd(const MatrixF& points, MatrixD centroids,
                   const KMeansConfig& config) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  const std::size_t k = centroids.rows();
  LloydOutcome out;
  out.assignment.assign(n, 0);
  std::vector<std::size_t> counts(k);
  double prev_sse = std::numeric_limits<double>::max();

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    // Assignment step.
    double sse = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      double best = std::numeric_limits<double>::max();
      std::uint32_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double dd = point_centroid_sqdist(points.row(p), centroids.row(c));
        if (dd < best) {
          best = dd;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      out.assignment[p] = best_c;
      sse += best;
    }
    out.iterations = iter + 1;

    // Update step.
    centroids.fill(0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t p = 0; p < n; ++p) {
      kernels::add_fd(points.row(p).data(), centroids.row(out.assignment[p]).data(), d);
      ++counts[out.assignment[p]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the point farthest from its centroid.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t p = 0; p < n; ++p) {
          const double dd =
              point_centroid_sqdist(points.row(p), centroids.row(out.assignment[p]));
          if (dd > far_d) {
            far_d = dd;
            far = p;
          }
        }
        for (std::size_t i = 0; i < d; ++i) centroids(c, i) = points(far, i);
        continue;
      }
      kernels::scale_d(centroids.row(c).data(), 1.0 / static_cast<double>(counts[c]), d);
    }

    out.sse = sse;
    if (prev_sse - sse <= config.tolerance * std::max(prev_sse, 1e-30)) break;
    prev_sse = sse;
  }
  out.centroids = std::move(centroids);
  return out;
}

}  // namespace

KMeansResult kmeans(const MatrixF& points, const KMeansConfig& config) {
  const std::size_t n = points.rows();
  if (config.k == 0) throw std::invalid_argument("kmeans: k == 0");
  if (config.k > n) throw std::invalid_argument("kmeans: k > number of points");
  if (config.restarts == 0) throw std::invalid_argument("kmeans: restarts == 0");

  const obs::ScopedTimer span(config.metrics, "kmeans");
  const Rng root(config.seed);
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  std::vector<LloydOutcome> best_per_thread(threads);
  // One byte per worker, NOT std::vector<bool>: the bit-packed
  // specialization would make concurrent writes to distinct chunks race on
  // the shared underlying word (a real data race, caught by TSan).
  std::vector<std::uint8_t> has_result(threads, 0);

  // Iterations land in [1, max_iterations]; one bucket per iteration count
  // makes the histogram exact. The SSE series is the across-restart
  // trajectory (append order is nondeterministic when threads > 1).
  obs::Histogram* iteration_hist = nullptr;
  obs::Series* sse_series = nullptr;
  if (config.metrics != nullptr) {
    iteration_hist = &config.metrics->histogram(
        "kmeans.iterations_per_restart",
        {0.0, static_cast<double>(config.max_iterations) + 1.0,
         config.max_iterations + 1});
    sse_series = &config.metrics->series("kmeans.restart_sse");
  }

  parallel_for_once(threads, config.restarts,
                    [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                      for (std::size_t r = begin; r < end; ++r) {
                        Rng rng = root.fork(r);
                        MatrixD seeds = config.seeding == KMeansSeeding::kPlusPlus
                                            ? seed_plus_plus(points, config.k, rng)
                                            : seed_uniform(points, config.k, rng);
                        LloydOutcome outcome = lloyd(points, std::move(seeds), config);
                        if (iteration_hist != nullptr) {
                          iteration_hist->record(
                              static_cast<double>(outcome.iterations));
                        }
                        if (sse_series != nullptr) sse_series->append(outcome.sse);
                        if (has_result[chunk] == 0 ||
                            outcome.sse < best_per_thread[chunk].sse) {
                          best_per_thread[chunk] = std::move(outcome);
                          has_result[chunk] = 1;
                        }
                      }
                    });

  std::size_t winner = 0;
  for (std::size_t t = 1; t < threads; ++t) {
    if (has_result[t] == 0) continue;
    if (has_result[winner] == 0 ||
        best_per_thread[t].sse < best_per_thread[winner].sse) {
      winner = t;
    }
  }
  V2V_CHECK(has_result[winner] != 0, "kmeans: no restart produced a result");
  KMeansResult result;
  result.assignment = std::move(best_per_thread[winner].assignment);
  result.centroids = std::move(best_per_thread[winner].centroids);
  result.sse = best_per_thread[winner].sse;
  result.iterations = best_per_thread[winner].iterations;
  result.restarts_run = config.restarts;
  if (config.metrics != nullptr) {
    config.metrics->counter("kmeans.restarts").add(config.restarts);
    config.metrics->gauge("kmeans.best_sse").set(result.sse);
    config.metrics->gauge("kmeans.seconds").set(span.seconds());
  }
  return result;
}

double kmeans_sse(const MatrixF& points, const std::vector<std::uint32_t>& assignment,
                  const MatrixD& centroids) {
  V2V_CHECK(assignment.size() == points.rows(),
            "kmeans_sse: assignment size != point count");
  double sse = 0.0;
  for (std::size_t p = 0; p < points.rows(); ++p) {
    V2V_BOUNDS(assignment[p], centroids.rows());
    sse += point_centroid_sqdist(points.row(p), centroids.row(assignment[p]));
  }
  return sse;
}

}  // namespace v2v::ml
