#include "v2v/ml/kmeans.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "v2v/common/check.hpp"
#include "v2v/common/kernels.hpp"
#include "v2v/common/numa.hpp"
#include "v2v/common/rng.hpp"
#include "v2v/common/thread_pool.hpp"
#include "v2v/obs/metrics.hpp"

namespace v2v::ml {
namespace {

// Fixed assignment grain: a pure function of n, NOT of the thread count,
// so chunk boundaries — and therefore the order per-chunk SSE partials
// are reduced in — are identical for every thread count. This is what
// keeps kmeans() bit-deterministic across `threads`.
constexpr std::size_t kAssignGrain = 1024;

// Blocked point×centroid scan tiles: a kCentroidBlock slab of centroid
// rows (32 × 64 d × 8 B = 16 KiB at d=64) stays L1-resident while
// kPointTile point rows stream against it.
constexpr std::size_t kPointTile = 8;
constexpr std::size_t kCentroidBlock = 32;

// Multiplicative slack applied whenever a Hamerly bound is tightened or
// tested. The double-accumulated kernels round to ~d·eps ≈ 3e-14 relative
// at d=129; 1e-12 dwarfs that, so the bounds stay sound (pruning never
// changes the answer) at a negligible cost in pruning rate.
constexpr double kBoundSlack = 1e-12;

// Certainty margin for the norm-cached scan, in units of
// d·eps·(‖x‖² + max‖c‖²). Covers the accumulated rounding of both
// norm-cached candidates AND of the exact sqdist values the naive oracle
// compares, so a gap wider than the margin proves the oracle — including
// its strict-'<' lowest-index tie-breaking — picks the same centroid.
constexpr double kNcMarginFactor = 32.0;

double point_centroid_sqdist(std::span<const float> p, std::span<const double> c) {
  return kernels::sqdist_fd(p.data(), c.data(), p.size());
}

MatrixD seed_uniform(const MatrixF& points, std::size_t k, Rng& rng) {
  const auto chosen = [&] {
    // Distinct rows via partial Fisher-Yates over indices.
    std::vector<std::size_t> idx(points.rows());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + rng.next_below(idx.size() - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }();
  MatrixD centroids(k, points.cols());
  for (std::size_t c = 0; c < k; ++c) {
    const auto row = points.row(chosen[c]);
    for (std::size_t i = 0; i < points.cols(); ++i) centroids(c, i) = row[i];
  }
  return centroids;
}

MatrixD seed_plus_plus(const MatrixF& points, std::size_t k, Rng& rng) {
  const std::size_t n = points.rows();
  MatrixD centroids(k, points.cols());
  std::vector<double> dist2(n, std::numeric_limits<double>::max());

  std::size_t first = rng.next_below(n);
  for (std::size_t i = 0; i < points.cols(); ++i) {
    centroids(0, i) = points(first, i);
  }
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      const double d = point_centroid_sqdist(points.row(p), centroids.row(c - 1));
      dist2[p] = std::min(dist2[p], d);
      total += dist2[p];
    }
    std::size_t pick = 0;
    if (total > 0.0) {
      const double target = rng.next_double() * total;
      double acc = 0.0;
      for (std::size_t p = 0; p < n; ++p) {
        acc += dist2[p];
        if (acc >= target) {
          pick = p;
          break;
        }
      }
    } else {
      pick = rng.next_below(n);  // all points identical to current centers
    }
    for (std::size_t i = 0; i < points.cols(); ++i) centroids(c, i) = points(pick, i);
  }
  return centroids;
}

struct ScanResult {
  std::uint32_t best_c = 0;
  double best_sq = std::numeric_limits<double>::infinity();
  double second_sq = std::numeric_limits<double>::infinity();
  std::uint64_t evals = 0;
};

// Full sqdist sweep in centroid-index order with strict '<': the naive
// oracle every other engine must reproduce bit-for-bit. Also tracks the
// runner-up distance, which seeds Hamerly's lower bound.
ScanResult scan_exact(const MatrixF& points, std::size_t p, const MatrixD& centroids) {
  const std::size_t k = centroids.rows();
  ScanResult r;
  for (std::size_t c = 0; c < k; ++c) {
    const double dd = point_centroid_sqdist(points.row(p), centroids.row(c));
    if (dd < r.best_sq) {
      r.second_sq = r.best_sq;
      r.best_sq = dd;
      r.best_c = static_cast<std::uint32_t>(c);
    } else if (dd < r.second_sq) {
      r.second_sq = dd;
    }
  }
  r.evals = k;
  return r;
}

// Norm-cached scan of a tile of <= kPointTile points, blocked over
// centroid rows for L1 reuse. d~(p,c) = ‖x‖² + ‖c‖² − 2⟨x,c⟩ ranks
// candidates on the SIMD dot path; when the gap between the two closest
// candidates cannot prove the oracle would agree, the point falls back to
// the exact scan. Either way out_sq[t] is the exact computed sqdist to
// the winner — the same bits the oracle would produce. out_lb_sq[t] is a
// lower bound on the computed squared distance to every non-winning
// centroid (may be +inf for k == 1).
void scan_tile_nc(const MatrixF& points, const MatrixD& centroids, const double* x2,
                  const double* c2, double c2max, const std::uint32_t* tile,
                  std::size_t tn, std::uint32_t* out_c, double* out_sq,
                  double* out_lb_sq, std::uint64_t* evals) {
  const std::size_t k = centroids.rows();
  const std::size_t d = points.cols();
  double min1[kPointTile];
  double min2[kPointTile];
  std::uint32_t arg1[kPointTile];
  for (std::size_t t = 0; t < tn; ++t) {
    min1[t] = std::numeric_limits<double>::infinity();
    min2[t] = std::numeric_limits<double>::infinity();
    arg1[t] = 0;
  }
  for (std::size_t cb = 0; cb < k; cb += kCentroidBlock) {
    const std::size_t ce = std::min(cb + kCentroidBlock, k);
    for (std::size_t t = 0; t < tn; ++t) {
      const float* px = points.row(tile[t]).data();
      const double xx = x2[tile[t]];
      for (std::size_t c = cb; c < ce; ++c) {
        const double nd =
            xx + c2[c] - 2.0 * kernels::dot_fd(px, centroids.row(c).data(), d);
        if (nd < min1[t]) {
          min2[t] = min1[t];
          min1[t] = nd;
          arg1[t] = static_cast<std::uint32_t>(c);
        } else if (nd < min2[t]) {
          min2[t] = nd;
        }
      }
    }
  }
  *evals += static_cast<std::uint64_t>(tn) * k;
  for (std::size_t t = 0; t < tn; ++t) {
    const std::size_t p = tile[t];
    const double margin = kNcMarginFactor * static_cast<double>(d) *
                          std::numeric_limits<double>::epsilon() * (x2[p] + c2max);
    if (k == 1 || min2[t] - min1[t] > margin) {
      out_c[t] = arg1[t];
      out_sq[t] = point_centroid_sqdist(points.row(p), centroids.row(arg1[t]));
      out_lb_sq[t] = min2[t] - margin;
      *evals += 1;
    } else {
      // Near-tie: the margin cannot certify the winner, so reproduce the
      // oracle verbatim (exact ties therefore always take this path and
      // inherit its lowest-index tie-breaking).
      const ScanResult r = scan_exact(points, p, centroids);
      out_c[t] = r.best_c;
      out_sq[t] = r.best_sq;
      out_lb_sq[t] = r.second_sq;
      *evals += r.evals;
    }
  }
}

struct LloydOutcome {
  std::vector<std::uint32_t> assignment;
  MatrixD centroids;
  double sse = 0.0;
  std::size_t iterations = 0;
  // Engine statistics, folded into the metrics registry by kmeans().
  std::uint64_t dist_evals = 0;
  std::uint64_t pruned_points = 0;
  std::uint64_t assign_points = 0;
  std::vector<double> pruned_by_iter;
  double assign_seconds = 0.0;
  double update_seconds = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

LloydOutcome lloyd(const MatrixF& points, MatrixD centroids,
                   const KMeansConfig& config, std::size_t threads) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  const std::size_t k = centroids.rows();
  const KMeansAssign mode = config.assign;
  const bool hamerly = mode == KMeansAssign::kHamerly;
  const bool cached = mode != KMeansAssign::kNaive;

  LloydOutcome out;
  out.assignment.assign(n, 0);
  std::vector<std::uint32_t>& assign = out.assignment;

  // Node-preferring handout for the point sweeps: every chunk writes only
  // its own slice, so claiming order — the only thing the schedule
  // changes — cannot affect the result. No-op on single-node hosts.
  const NumaSchedule numa_schedule = numa::schedule();

  // Exact computed sqdist from each point to its assigned centroid this
  // iteration; feeds the SSE, the Hamerly upper bound, and the
  // empty-cluster reseed (no rescan needed).
  std::vector<double> best_sq(n, 0.0);
  std::vector<double> x2;
  if (cached) {
    x2.resize(n);
    parallel_for_dynamic(threads, n, kAssignGrain, numa_schedule,
                         [&](std::size_t, std::size_t, std::size_t b, std::size_t e) {
                           for (std::size_t p = b; p < e; ++p) {
                             const float* px = points.row(p).data();
                             x2[p] = kernels::ddot(px, px, d);
                           }
                         });
  }
  std::vector<double> c2(cached ? k : 0);
  std::vector<double> lower;     // Hamerly l(p): lower bound on the runner-up distance
  std::vector<double> half_gap;  // s(c): half distance to the nearest other centroid
  std::vector<double> drift;
  MatrixD previous;  // centroids before the update step (drift accounting)
  if (hamerly) {
    lower.assign(n, 0.0);
    half_gap.assign(k, 0.0);
    drift.assign(k, 0.0);
  }

  const std::size_t chunks = chunk_count(n, kAssignGrain);
  std::vector<double> chunk_sse(chunks);
  std::vector<std::uint64_t> chunk_evals(chunks);
  std::vector<std::uint64_t> chunk_pruned(chunks);
  std::vector<std::vector<std::uint32_t>> scan_scratch(threads);
  for (auto& s : scan_scratch) s.reserve(kAssignGrain);

  std::vector<std::size_t> counts(k);
  std::vector<std::size_t> offsets(k + 1);
  std::vector<std::size_t> cursor(k);
  std::vector<std::uint32_t> order(n);

  double prev_sse = std::numeric_limits<double>::max();

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    const auto assign_start = std::chrono::steady_clock::now();
    double c2max = 0.0;
    if (cached) {
      for (std::size_t c = 0; c < k; ++c) {
        c2[c] = kernels::dot_dd(centroids.row(c).data(), centroids.row(c).data(), d);
        c2max = std::max(c2max, c2[c]);
      }
    }
    const bool bounds_live = hamerly && iter > 0;
    if (bounds_live) {
      // s(c): half the distance from c to its nearest sibling, deflated by
      // the slack so `u < s` keeps the oracle's strict ordering.
      std::fill(half_gap.begin(), half_gap.end(),
                std::numeric_limits<double>::infinity());
      for (std::size_t c = 0; c < k; ++c) {
        for (std::size_t o = c + 1; o < k; ++o) {
          const double dd = kernels::sqdist_dd(centroids.row(c).data(),
                                               centroids.row(o).data(), d);
          half_gap[c] = std::min(half_gap[c], dd);
          half_gap[o] = std::min(half_gap[o], dd);
        }
      }
      for (std::size_t c = 0; c < k; ++c) {
        half_gap[c] = 0.5 * std::sqrt(half_gap[c]) * (1.0 - kBoundSlack);
      }
    }

    std::fill(chunk_sse.begin(), chunk_sse.end(), 0.0);
    std::fill(chunk_evals.begin(), chunk_evals.end(), 0);
    std::fill(chunk_pruned.begin(), chunk_pruned.end(), 0);

    // Assignment step. Each chunk writes only its own slice of assign/
    // best_sq/lower and its own chunk_* slot, so scheduling never affects
    // the result.
    parallel_for_dynamic(
        threads, n, kAssignGrain, numa_schedule,
        [&](std::size_t worker, std::size_t chunk, std::size_t b, std::size_t e) {
          double sse = 0.0;
          std::uint64_t evals = 0;
          std::uint64_t pruned = 0;
          if (mode == KMeansAssign::kNaive) {
            for (std::size_t p = b; p < e; ++p) {
              const ScanResult r = scan_exact(points, p, centroids);
              assign[p] = r.best_c;
              best_sq[p] = r.best_sq;
              evals += r.evals;
            }
          } else if (!bounds_live) {
            // kNormCached every iteration; kHamerly's bound-seeding first
            // iteration: blocked norm-cached scan of every point.
            std::uint32_t tile[kPointTile];
            std::uint32_t tc[kPointTile];
            double tsq[kPointTile];
            double tlb[kPointTile];
            for (std::size_t p = b; p < e; p += kPointTile) {
              const std::size_t tn = std::min(kPointTile, e - p);
              for (std::size_t t = 0; t < tn; ++t) {
                tile[t] = static_cast<std::uint32_t>(p + t);
              }
              scan_tile_nc(points, centroids, x2.data(), c2.data(), c2max, tile, tn,
                           tc, tsq, tlb, &evals);
              for (std::size_t t = 0; t < tn; ++t) {
                assign[p + t] = tc[t];
                best_sq[p + t] = tsq[t];
                if (hamerly) {
                  lower[p + t] =
                      std::sqrt(std::max(tlb[t], 0.0)) * (1.0 - kBoundSlack);
                }
              }
            }
          } else {
            // Hamerly: tighten u with one exact distance, prune on
            // u < max(l, s); survivors take the blocked scan.
            std::vector<std::uint32_t>& scans = scan_scratch[worker];
            scans.clear();
            for (std::size_t p = b; p < e; ++p) {
              const std::uint32_t ap = assign[p];
              const double bsq =
                  point_centroid_sqdist(points.row(p), centroids.row(ap));
              ++evals;
              best_sq[p] = bsq;
              const double u = std::sqrt(bsq) * (1.0 + kBoundSlack);
              if (u < std::max(lower[p], half_gap[ap])) {
                ++pruned;
                continue;
              }
              scans.push_back(static_cast<std::uint32_t>(p));
            }
            std::uint32_t tc[kPointTile];
            double tsq[kPointTile];
            double tlb[kPointTile];
            for (std::size_t i = 0; i < scans.size(); i += kPointTile) {
              const std::size_t tn = std::min(kPointTile, scans.size() - i);
              scan_tile_nc(points, centroids, x2.data(), c2.data(), c2max,
                           scans.data() + i, tn, tc, tsq, tlb, &evals);
              for (std::size_t t = 0; t < tn; ++t) {
                const std::uint32_t p = scans[i + t];
                assign[p] = tc[t];
                best_sq[p] = tsq[t];
                lower[p] = std::sqrt(std::max(tlb[t], 0.0)) * (1.0 - kBoundSlack);
              }
            }
          }
          // SSE always sums best_sq in point-index order, regardless of
          // which branch (or prune/scan split) produced the values — the
          // chunk sum is bit-identical across engines.
          for (std::size_t p = b; p < e; ++p) sse += best_sq[p];
          chunk_sse[chunk] = sse;
          chunk_evals[chunk] = evals;
          chunk_pruned[chunk] = pruned;
        });

    // Reduce in chunk order: identical bits for any thread count.
    double sse = 0.0;
    std::uint64_t iter_pruned = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      sse += chunk_sse[c];
      out.dist_evals += chunk_evals[c];
      iter_pruned += chunk_pruned[c];
    }
    out.pruned_points += iter_pruned;
    out.assign_points += n;
    out.pruned_by_iter.push_back(static_cast<double>(iter_pruned) /
                                 static_cast<double>(n));
    out.iterations = iter + 1;
    out.assign_seconds += seconds_since(assign_start);
    const auto update_start = std::chrono::steady_clock::now();

    // Update step: counting-sort posting lists, then per-cluster sums in
    // increasing point order — bit-identical to the serial interleaved
    // accumulation and independent of threads, grain, and engine.
    if (hamerly) previous = centroids;
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t p = 0; p < n; ++p) ++counts[assign[p]];
    offsets[0] = 0;
    for (std::size_t c = 0; c < k; ++c) offsets[c + 1] = offsets[c] + counts[c];
    std::copy(offsets.begin(), offsets.end() - 1, cursor.begin());
    for (std::size_t p = 0; p < n; ++p) {
      order[cursor[assign[p]]++] = static_cast<std::uint32_t>(p);
    }
    parallel_for_dynamic(
        threads, k, 1, [&](std::size_t, std::size_t, std::size_t b, std::size_t e) {
          for (std::size_t c = b; c < e; ++c) {
            double* crow = centroids.row(c).data();
            std::fill(crow, crow + d, 0.0);
            for (std::size_t i = offsets[c]; i < offsets[c + 1]; ++i) {
              kernels::add_fd(points.row(order[i]).data(), crow, d);
            }
            if (counts[c] != 0) {
              kernels::scale_d(crow, 1.0 / static_cast<double>(counts[c]), d);
            }
          }
        });

    // Empty clusters: re-seed with the point farthest from its (pre-
    // update) centroid, reusing the assignment step's exact distances
    // instead of an O(n·d) rescan. Chosen entries are knocked out so
    // several empty clusters pick distinct points.
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] != 0) continue;
      std::size_t far = 0;
      double far_d = -1.0;
      for (std::size_t p = 0; p < n; ++p) {
        if (best_sq[p] > far_d) {
          far_d = best_sq[p];
          far = p;
        }
      }
      for (std::size_t i = 0; i < d; ++i) centroids(c, i) = points(far, i);
      best_sq[far] = -1.0;
    }

    if (hamerly) {
      // Drift accounting: l(p) loses the largest drift among centroids the
      // point could switch to — the global max, or the runner-up when the
      // assigned centroid IS the max drifter (Hamerly's two-max trick). A
      // re-seeded centroid simply shows up as a huge drift.
      double max1 = 0.0;
      double max2 = 0.0;
      std::size_t arg_max = 0;
      for (std::size_t c = 0; c < k; ++c) {
        drift[c] = std::sqrt(kernels::sqdist_dd(previous.row(c).data(),
                                                centroids.row(c).data(), d)) *
                   (1.0 + kBoundSlack);
        if (drift[c] > max1) {
          max2 = max1;
          max1 = drift[c];
          arg_max = c;
        } else if (drift[c] > max2) {
          max2 = drift[c];
        }
      }
      for (std::size_t p = 0; p < n; ++p) {
        const double delta = assign[p] == arg_max ? max2 : max1;
        const double next = (lower[p] - delta) * (1.0 - kBoundSlack);
        lower[p] = next > 0.0 ? next : 0.0;
      }
    }
    out.update_seconds += seconds_since(update_start);

    out.sse = sse;
    if (prev_sse - sse <= config.tolerance * std::max(prev_sse, 1e-30)) break;
    prev_sse = sse;
  }
  out.centroids = std::move(centroids);
  return out;
}

}  // namespace

const char* assign_mode_name(KMeansAssign mode) noexcept {
  switch (mode) {
    case KMeansAssign::kNaive:
      return "naive";
    case KMeansAssign::kNormCached:
      return "norm_cached";
    case KMeansAssign::kHamerly:
      return "hamerly";
  }
  return "unknown";
}

KMeansResult kmeans(const MatrixF& points, const KMeansConfig& config) {
  const std::size_t n = points.rows();
  if (config.k == 0) throw std::invalid_argument("kmeans: k == 0");
  if (config.k > n) throw std::invalid_argument("kmeans: k > number of points");
  if (config.restarts == 0) throw std::invalid_argument("kmeans: restarts == 0");

  const obs::ScopedTimer span(config.metrics, "kmeans");
  const Rng root(config.seed);
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  // Work-splitting policy: restarts are embarrassingly parallel, so they
  // get the workers whenever there are enough of them; otherwise restarts
  // run sequentially and each Lloyd run parallelizes over points. Both
  // paths produce bit-identical results to threads == 1.
  const bool restart_parallel = config.restarts >= threads;

  // Iterations land in [1, max_iterations]; one bucket per iteration count
  // makes the histogram exact. The SSE series is the across-restart
  // trajectory (append order is nondeterministic when threads > 1).
  obs::Histogram* iteration_hist = nullptr;
  obs::Series* sse_series = nullptr;
  if (config.metrics != nullptr) {
    iteration_hist = &config.metrics->histogram(
        "kmeans.iterations_per_restart",
        {0.0, static_cast<double>(config.max_iterations) + 1.0,
         config.max_iterations + 1});
    sse_series = &config.metrics->series("kmeans.restart_sse");
  }

  auto run_restart = [&](std::size_t r, std::size_t lloyd_threads) {
    Rng rng = root.fork(r);
    MatrixD seeds = config.seeding == KMeansSeeding::kPlusPlus
                        ? seed_plus_plus(points, config.k, rng)
                        : seed_uniform(points, config.k, rng);
    LloydOutcome outcome = lloyd(points, std::move(seeds), config, lloyd_threads);
    if (iteration_hist != nullptr) {
      iteration_hist->record(static_cast<double>(outcome.iterations));
    }
    if (sse_series != nullptr) sse_series->append(outcome.sse);
    return outcome;
  };

  LloydOutcome best;
  bool have_best = false;
  std::uint64_t total_evals = 0;
  std::uint64_t total_pruned = 0;
  std::uint64_t total_points = 0;
  double assign_seconds = 0.0;
  double update_seconds = 0.0;

  if (restart_parallel) {
    std::vector<LloydOutcome> best_per_thread(threads);
    // One byte per worker, NOT std::vector<bool>: the bit-packed
    // specialization would make concurrent writes to distinct chunks race
    // on the shared underlying word (a real data race, caught by TSan).
    std::vector<std::uint8_t> has_result(threads, 0);
    std::vector<std::uint64_t> evals_pc(threads, 0);
    std::vector<std::uint64_t> pruned_pc(threads, 0);
    std::vector<std::uint64_t> points_pc(threads, 0);
    std::vector<double> asec_pc(threads, 0.0);
    std::vector<double> usec_pc(threads, 0.0);
    parallel_for_once(threads, config.restarts,
                      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                        for (std::size_t r = begin; r < end; ++r) {
                          LloydOutcome outcome = run_restart(r, 1);
                          evals_pc[chunk] += outcome.dist_evals;
                          pruned_pc[chunk] += outcome.pruned_points;
                          points_pc[chunk] += outcome.assign_points;
                          asec_pc[chunk] += outcome.assign_seconds;
                          usec_pc[chunk] += outcome.update_seconds;
                          if (has_result[chunk] == 0 ||
                              outcome.sse < best_per_thread[chunk].sse) {
                            best_per_thread[chunk] = std::move(outcome);
                            has_result[chunk] = 1;
                          }
                        }
                      });
    std::size_t winner = 0;
    for (std::size_t t = 0; t < threads; ++t) {
      total_evals += evals_pc[t];
      total_pruned += pruned_pc[t];
      total_points += points_pc[t];
      assign_seconds += asec_pc[t];
      update_seconds += usec_pc[t];
      if (t == 0 || has_result[t] == 0) continue;
      if (has_result[winner] == 0 ||
          best_per_thread[t].sse < best_per_thread[winner].sse) {
        winner = t;
      }
    }
    if (has_result[winner] != 0) {
      best = std::move(best_per_thread[winner]);
      have_best = true;
    }
  } else {
    for (std::size_t r = 0; r < config.restarts; ++r) {
      LloydOutcome outcome = run_restart(r, threads);
      total_evals += outcome.dist_evals;
      total_pruned += outcome.pruned_points;
      total_points += outcome.assign_points;
      assign_seconds += outcome.assign_seconds;
      update_seconds += outcome.update_seconds;
      if (!have_best || outcome.sse < best.sse) {
        best = std::move(outcome);
        have_best = true;
      }
    }
  }
  V2V_CHECK(have_best, "kmeans: no restart produced a result");

  KMeansResult result;
  result.assignment = std::move(best.assignment);
  result.centroids = std::move(best.centroids);
  result.sse = best.sse;
  result.iterations = best.iterations;
  result.restarts_run = config.restarts;
  if (config.metrics != nullptr) {
    auto& m = *config.metrics;
    m.counter("kmeans.restarts").add(config.restarts);
    m.counter("kmeans.dist_evals").add(total_evals);
    m.gauge("kmeans.best_sse").set(result.sse);
    m.gauge("kmeans.seconds").set(span.seconds());
    m.gauge("kmeans.assign_seconds").set(assign_seconds);
    m.gauge("kmeans.update_seconds").set(update_seconds);
    m.gauge("kmeans.threads").set(static_cast<double>(threads));
    m.gauge("kmeans.points_parallel").set(restart_parallel ? 0.0 : 1.0);
    m.gauge("kmeans.assign_mode").set(static_cast<double>(config.assign));
    m.gauge("kmeans.pruned_fraction_overall")
        .set(total_points != 0
                 ? static_cast<double>(total_pruned) / static_cast<double>(total_points)
                 : 0.0);
    // Per-iteration pruning trajectory of the winning restart, appended
    // after the parallel section so the series is deterministic.
    auto& frac = m.series("kmeans.pruned_fraction");
    for (const double f : best.pruned_by_iter) frac.append(f);
  }
  return result;
}

std::vector<std::uint32_t> assign_to_centroids(const MatrixF& points,
                                               const MatrixD& centroids,
                                               std::size_t threads,
                                               KMeansAssign assign) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  const std::size_t k = centroids.rows();
  if (k == 0) throw std::invalid_argument("assign_to_centroids: no centroids");
  V2V_CHECK(centroids.cols() == d, "assign_to_centroids: dimension mismatch");
  const std::size_t workers = std::max<std::size_t>(1, threads);
  std::vector<std::uint32_t> result(n, 0);
  if (n == 0) return result;
  // Same per-chunk-slice argument as lloyd(): the node-preferring queue
  // only reorders claiming, results stay bit-identical.
  const NumaSchedule numa_schedule = numa::schedule();
  if (assign == KMeansAssign::kNaive) {
    parallel_for_dynamic(workers, n, kAssignGrain, numa_schedule,
                         [&](std::size_t, std::size_t, std::size_t b, std::size_t e) {
                           for (std::size_t p = b; p < e; ++p) {
                             result[p] = scan_exact(points, p, centroids).best_c;
                           }
                         });
    return result;
  }
  std::vector<double> x2(n);
  parallel_for_dynamic(workers, n, kAssignGrain, numa_schedule,
                       [&](std::size_t, std::size_t, std::size_t b, std::size_t e) {
                         for (std::size_t p = b; p < e; ++p) {
                           const float* px = points.row(p).data();
                           x2[p] = kernels::ddot(px, px, d);
                         }
                       });
  std::vector<double> c2(k);
  double c2max = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    c2[c] = kernels::dot_dd(centroids.row(c).data(), centroids.row(c).data(), d);
    c2max = std::max(c2max, c2[c]);
  }
  parallel_for_dynamic(
      workers, n, kAssignGrain, numa_schedule,
      [&](std::size_t, std::size_t, std::size_t b, std::size_t e) {
        std::uint32_t tile[kPointTile];
        std::uint32_t tc[kPointTile];
        double tsq[kPointTile];
        double tlb[kPointTile];
        std::uint64_t evals = 0;
        for (std::size_t p = b; p < e; p += kPointTile) {
          const std::size_t tn = std::min(kPointTile, e - p);
          for (std::size_t t = 0; t < tn; ++t) {
            tile[t] = static_cast<std::uint32_t>(p + t);
          }
          scan_tile_nc(points, centroids, x2.data(), c2.data(), c2max, tile, tn, tc,
                       tsq, tlb, &evals);
          for (std::size_t t = 0; t < tn; ++t) result[p + t] = tc[t];
        }
      });
  return result;
}

double kmeans_sse(const MatrixF& points, const std::vector<std::uint32_t>& assignment,
                  const MatrixD& centroids) {
  V2V_CHECK(assignment.size() == points.rows(),
            "kmeans_sse: assignment size != point count");
  double sse = 0.0;
  for (std::size_t p = 0; p < points.rows(); ++p) {
    V2V_BOUNDS(assignment[p], centroids.rows());
    sse += point_centroid_sqdist(points.row(p), centroids.row(assignment[p]));
  }
  return sse;
}

}  // namespace v2v::ml
