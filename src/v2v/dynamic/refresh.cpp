#include "v2v/dynamic/refresh.hpp"

#include <algorithm>
#include <utility>

#include "v2v/common/check.hpp"
#include "v2v/common/rng.hpp"
#include "v2v/common/timer.hpp"
#include "v2v/obs/metrics.hpp"
#include "v2v/walk/walker.hpp"

namespace v2v::dynamic {

RefreshSession::RefreshSession(DynamicGraph graph,
                               const walk::WalkConfig& walk_config,
                               const embed::TrainConfig& train_config,
                               const RefreshTuning& tuning, std::uint64_t seed,
                               obs::MetricsRegistry* metrics)
    : graph_(std::move(graph)),
      walk_config_(walk_config),
      train_config_(train_config),
      tuning_(tuning),
      metrics_(metrics) {
  // The same master-seed split learn_embedding uses, so a bootstrap
  // session reproduces a `v2v_tool embed` run bit-for-bit.
  walk_seed_ = 0x9e3779b97f4a7c15ULL;
  if (seed != 0) {
    std::uint64_t sm = seed;
    walk_seed_ = splitmix64(sm);
    train_config_.seed = splitmix64(sm);
  }
  if (train_config_.metrics == nullptr) train_config_.metrics = metrics_;
  if (walk_config_.metrics == nullptr) walk_config_.metrics = metrics_;

  // The construction-time edge set is the baseline: compact it into the
  // CSR and forget the dirtiness the bulk load produced.
  graph_.compact();
  (void)graph_.drain_dirty();
  V2V_CHECK(graph_.vertex_count() > 0, "RefreshSession: empty graph");

  regenerate_corpus();
  rebuild_index();

  embed::TrainConfig config = train_config_;
  config.capture_checkpoint = true;
  auto result =
      spool_ ? embed::train_embedding(*spool_, graph_.base().vertex_count(),
                                      config)
             : embed::train_embedding(corpus_, graph_.base().vertex_count(),
                                      config);
  embedding_ = std::move(result.embedding);
  checkpoint_ = std::move(*result.checkpoint);
  checkpoint_.walks_per_vertex = walk_config_.walks_per_vertex;
  checkpoint_.walk_length = walk_config_.walk_length;
  checkpoint_.walk_seed = walk_seed_;
}

RefreshSession::RefreshSession(DynamicGraph graph, embed::Embedding warm_start,
                               embed::TrainerCheckpoint checkpoint,
                               const walk::WalkConfig& walk_config,
                               const embed::TrainConfig& train_config,
                               const RefreshTuning& tuning,
                               obs::MetricsRegistry* metrics)
    : graph_(std::move(graph)),
      walk_config_(walk_config),
      train_config_(train_config),
      tuning_(tuning),
      walk_seed_(checkpoint.walk_seed),
      embedding_(std::move(warm_start)),
      checkpoint_(std::move(checkpoint)),
      metrics_(metrics) {
  V2V_CHECK(checkpoint_.walks_per_vertex == walk_config_.walks_per_vertex,
            "RefreshSession: walks_per_vertex differs from the checkpoint");
  V2V_CHECK(checkpoint_.walk_length == walk_config_.walk_length,
            "RefreshSession: walk_length differs from the checkpoint");
  if (train_config_.metrics == nullptr) train_config_.metrics = metrics_;
  if (walk_config_.metrics == nullptr) walk_config_.metrics = metrics_;

  graph_.compact();
  (void)graph_.drain_dirty();
  V2V_CHECK(graph_.vertex_count() > 0, "RefreshSession: empty graph");

  // Deterministically replay the corpus the snapshot was trained on; from
  // here on the session is indistinguishable from one that never exited.
  regenerate_corpus();
  rebuild_index();
}

void RefreshSession::regenerate_corpus() {
  if (!walk_config_.spool_dir.empty()) {
    // Out-of-core replay: walks stream to disk and are read back mmap'd,
    // so peak RSS stays O(spool buffer) instead of O(corpus). The spool
    // holds the exact generate_corpus token stream (same seed, same
    // sharding), preserving the session's replay invariant.
    (void)walk::generate_corpus_spooled(graph_.base(), walk_config_,
                                        walk_seed_);
    spool_.emplace(walk::SpooledCorpus::open(walk_config_.spool_dir));
    corpus_ = walk::Corpus();
    return;
  }
  spool_.reset();
  corpus_ = walk::generate_corpus(graph_.base(), walk_config_, walk_seed_);
}

void RefreshSession::rebuild_index() {
  index_ = spool_ ? walk::WalkIndex(*spool_, graph_.base().vertex_count())
                  : walk::WalkIndex(corpus_, graph_.base().vertex_count());
}

embed::TrainConfig RefreshSession::refresh_train_config() const {
  embed::TrainConfig config = train_config_;
  config.epochs = std::max<std::size_t>(1, tuning_.epochs);
  config.min_epochs = std::min(config.min_epochs, config.epochs);
  // Continue the decayed schedule by default: the refresh starts where
  // the previous run's linear decay left off.
  config.initial_lr = tuning_.initial_lr > 0.0 ? tuning_.initial_lr
                      : checkpoint_.last_lr > 0.0
                          ? checkpoint_.last_lr
                          : train_config_.initial_lr;
  // A fresh trainer stream per round, derived so round k of any session
  // over the same lineage trains identically.
  std::uint64_t sm = checkpoint_.seed ^ (checkpoint_.refresh_rounds + 1);
  config.seed = splitmix64(sm);
  config.capture_checkpoint = true;
  return config;
}

RefreshStats RefreshSession::refresh() {
  WallTimer total_timer;
  RefreshStats stats;

  const auto dirty = graph_.drain_dirty();
  stats.dirty_vertices = dirty.size();
  graph_.compact();

  WallTimer walk_timer;
  // Splice from whichever backing currently holds the session corpus;
  // the merged result is RAM-resident either way, so a spooled session
  // pays the disk read exactly once.
  auto incremental =
      spool_ ? regenerate_corpus_incremental(
                   graph_.base(), walk_config_, walk_seed_, *spool_, index_,
                   std::span<const graph::VertexId>(dirty))
             : regenerate_corpus_incremental(
                   graph_.base(), walk_config_, walk_seed_, corpus_, index_,
                   std::span<const graph::VertexId>(dirty));
  stats.walk_seconds = walk_timer.seconds();
  stats.regenerated_starts = incremental.regenerated_starts;
  stats.reused_starts = incremental.reused_starts;
  stats.invalidated_walks = incremental.invalidated_walks;
  corpus_ = std::move(incremental.corpus);
  spool_.reset();
  rebuild_index();

  WallTimer train_timer;
  auto result = embed::train_embedding_resume(corpus_, embedding_, checkpoint_,
                                              refresh_train_config());
  stats.train_seconds = train_timer.seconds();
  embedding_ = std::move(result.embedding);
  checkpoint_ = std::move(*result.checkpoint);
  stats.train = std::move(result.stats);
  stats.total_seconds = total_timer.seconds();
  record_stats(stats);
  return stats;
}

RefreshStats RefreshSession::full_retrain() {
  WallTimer total_timer;
  RefreshStats stats;
  stats.full_retrain = true;

  stats.dirty_vertices = graph_.drain_dirty().size();
  graph_.compact();

  WallTimer walk_timer;
  regenerate_corpus();
  stats.walk_seconds = walk_timer.seconds();
  stats.regenerated_starts = graph_.base().vertex_count();
  rebuild_index();

  WallTimer train_timer;
  embed::TrainConfig config = train_config_;
  config.capture_checkpoint = true;
  auto result =
      spool_ ? embed::train_embedding(*spool_, graph_.base().vertex_count(),
                                      config)
             : embed::train_embedding(corpus_, graph_.base().vertex_count(),
                                      config);
  stats.train_seconds = train_timer.seconds();
  embedding_ = std::move(result.embedding);
  checkpoint_ = std::move(*result.checkpoint);
  // A retrain starts a fresh lineage with the session's walk identity.
  checkpoint_.walks_per_vertex = walk_config_.walks_per_vertex;
  checkpoint_.walk_length = walk_config_.walk_length;
  checkpoint_.walk_seed = walk_seed_;
  stats.train = std::move(result.stats);
  stats.total_seconds = total_timer.seconds();
  record_stats(stats);
  return stats;
}

void RefreshSession::record_stats(const RefreshStats& stats) const {
  if (metrics_ == nullptr) return;
  metrics_->counter(stats.full_retrain ? "dynamic.full_retrains"
                                       : "dynamic.refreshes")
      .add(1);
  metrics_->gauge("dynamic.dirty_vertices")
      .set(static_cast<double>(stats.dirty_vertices));
  metrics_->gauge("dynamic.regenerated_starts")
      .set(static_cast<double>(stats.regenerated_starts));
  metrics_->gauge("dynamic.reused_starts")
      .set(static_cast<double>(stats.reused_starts));
  metrics_->gauge("dynamic.invalidated_walks")
      .set(static_cast<double>(stats.invalidated_walks));
  metrics_->gauge("dynamic.walk_seconds").set(stats.walk_seconds);
  metrics_->gauge("dynamic.train_seconds").set(stats.train_seconds);
  metrics_->gauge("dynamic.total_seconds").set(stats.total_seconds);
  metrics_->series("dynamic.refresh_seconds").append(stats.total_seconds);
}

}  // namespace v2v::dynamic
