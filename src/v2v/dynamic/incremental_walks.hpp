// Incremental walk regeneration for the dynamic-refresh pipeline.
//
// Given the new graph, the old corpus, and the set of dirty vertices, we
// regenerate only the walk blocks that could differ and splice the rest
// through unchanged. A start vertex is *affected* when
//   - it is dirty (its own neighborhood changed),
//   - any of its old walks visited a dirty vertex (the trajectory could
//     diverge at that step), or
//   - it is a brand-new vertex (no old walks exist).
// Every other start vertex's walks replay bit-identically: each step
// leaves a clean vertex whose neighbor set (and alias table) is
// unchanged, so the per-vertex RNG stream consumes the same draws. That
// induction makes the output *exactly* equal to
// walk::generate_corpus(new_graph, config, seed) — a contract the tests
// in tests/dynamic/ enforce token-for-token.
#pragma once

#include <cstdint>
#include <span>

#include "v2v/graph/graph.hpp"
#include "v2v/walk/corpus.hpp"
#include "v2v/walk/corpus_reader.hpp"
#include "v2v/walk/walk_index.hpp"
#include "v2v/walk/walker.hpp"

namespace v2v::dynamic {

struct IncrementalWalkResult {
  walk::Corpus corpus;
  std::size_t regenerated_starts = 0;  ///< start vertices walked fresh
  std::size_t reused_starts = 0;       ///< start vertices spliced from the old corpus
  std::size_t invalidated_walks = 0;   ///< old walks discarded (regenerated starts x walks_per_vertex, new starts excluded)
};

/// Regenerates the corpus for `g` (the post-mutation graph), reusing the
/// walk blocks of `old_corpus` (generated on the pre-mutation graph with
/// the same `config` and `seed`) whose trajectories avoided every vertex
/// in `dirty`. `old_index` must index `old_corpus`; `old_corpus` must
/// hold exactly walks_per_vertex walks per old vertex in start-vertex
/// order (the generate_corpus layout). The old corpus is read through the
/// CorpusReader abstraction, so it can be the RAM corpus or a disk spool
/// (walk::SpooledCorpus) — splicing reads each reused walk once.
[[nodiscard]] IncrementalWalkResult regenerate_corpus_incremental(
    const graph::Graph& g, const walk::WalkConfig& config, std::uint64_t seed,
    const walk::CorpusReader& old_corpus, const walk::WalkIndex& old_index,
    std::span<const graph::VertexId> dirty);

/// Convenience overload for a RAM-resident old corpus.
[[nodiscard]] IncrementalWalkResult regenerate_corpus_incremental(
    const graph::Graph& g, const walk::WalkConfig& config, std::uint64_t seed,
    const walk::Corpus& old_corpus, const walk::WalkIndex& old_index,
    std::span<const graph::VertexId> dirty);

}  // namespace v2v::dynamic
