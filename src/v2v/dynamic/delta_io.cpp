#include "v2v/dynamic/delta_io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "v2v/common/string_util.hpp"

namespace v2v::dynamic {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("delta line " + std::to_string(line_no) + ": " + why);
}

[[nodiscard]] graph::VertexId parse_vertex(std::string_view field,
                                           std::size_t line_no) {
  const auto id = parse_int(field);
  constexpr auto kMaxId =
      static_cast<std::int64_t>(std::numeric_limits<graph::VertexId>::max());
  if (!id || *id < 0) fail(line_no, "bad vertex id");
  if (*id > kMaxId) fail(line_no, "vertex id out of range");
  return static_cast<graph::VertexId>(*id);
}

/// Shortest round-trippable decimal form (%.17g is exact for doubles).
void append_double(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

}  // namespace

std::vector<EdgeDelta> parse_deltas(std::string_view text) {
  std::vector<EdgeDelta> deltas;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const auto newline = text.find('\n');
    std::string_view line = text.substr(0, newline);
    text = newline == std::string_view::npos ? std::string_view()
                                             : text.substr(newline + 1);
    const auto hash = line.find('#');
    const std::string_view body =
        trim(hash == std::string_view::npos ? line : line.substr(0, hash));
    if (body.empty()) continue;
    const auto fields = split_ws(body);
    if (fields[0] != "a" && fields[0] != "d") {
      fail(line_no, "expected op 'a' or 'd'");
    }
    EdgeDelta delta;
    delta.op = fields[0] == "a" ? EdgeDelta::Op::kInsert : EdgeDelta::Op::kRemove;
    if (fields.size() < 3) fail(line_no, "expected '<op> u v'");
    delta.u = parse_vertex(fields[1], line_no);
    delta.v = parse_vertex(fields[2], line_no);
    if (delta.op == EdgeDelta::Op::kRemove) {
      if (fields.size() > 3) fail(line_no, "remove takes only 'd u v'");
    } else {
      if (fields.size() >= 4) {
        const auto w = parse_double(fields[3]);
        // The same contract GraphBuilder enforces, checked here so a
        // parsed delta can always be applied.
        if (!w || !std::isfinite(*w) || *w < 0.0) fail(line_no, "bad weight");
        delta.weight = *w;
      }
      if (fields.size() >= 5) {
        const auto ts = parse_double(fields[4]);
        if (!ts || !std::isfinite(*ts)) fail(line_no, "bad timestamp");
        delta.timestamp = *ts;
      }
      if (fields.size() > 5) fail(line_no, "too many columns");
    }
    deltas.push_back(delta);
  }
  return deltas;
}

std::vector<EdgeDelta> read_deltas(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_deltas(buffer.str());
}

std::vector<EdgeDelta> read_delta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_deltas(in);
}

std::string encode_deltas(std::span<const EdgeDelta> deltas) {
  std::string out;
  for (const EdgeDelta& delta : deltas) {
    const bool insert = delta.op == EdgeDelta::Op::kInsert;
    out += insert ? 'a' : 'd';
    out += ' ';
    out += std::to_string(delta.u);
    out += ' ';
    out += std::to_string(delta.v);
    if (insert &&
        (delta.weight != 1.0 || delta.timestamp != graph::kNoTimestamp)) {
      out += ' ';
      append_double(out, delta.weight);
      if (delta.timestamp != graph::kNoTimestamp) {
        out += ' ';
        append_double(out, delta.timestamp);
      }
    }
    out += '\n';
  }
  return out;
}

void write_deltas(std::span<const EdgeDelta> deltas, std::ostream& out) {
  out << encode_deltas(deltas);
}

void write_delta_file(std::span<const EdgeDelta> deltas,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_deltas(deltas, out);
  if (!out) throw std::runtime_error("cannot write " + path);
}

std::vector<LiveEdge> read_edge_records(std::istream& in) {
  std::vector<LiveEdge> edges;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    const std::string_view body = trim(
        hash == std::string::npos ? std::string_view(line)
                                  : std::string_view(line).substr(0, hash));
    if (body.empty()) continue;
    const auto fields = split_ws(body);
    if (fields.size() < 2) fail(line_no, "expected at least 'u v'");
    LiveEdge edge;
    edge.u = parse_vertex(fields[0], line_no);
    edge.v = parse_vertex(fields[1], line_no);
    if (fields.size() >= 3) {
      const auto w = parse_double(fields[2]);
      if (!w || !std::isfinite(*w) || *w < 0.0) fail(line_no, "bad weight");
      edge.weight = *w;
    }
    if (fields.size() >= 4) {
      const auto ts = parse_double(fields[3]);
      if (!ts || !std::isfinite(*ts)) fail(line_no, "bad timestamp");
      edge.timestamp = *ts;
    }
    if (fields.size() > 4) fail(line_no, "too many columns");
    edges.push_back(edge);
  }
  return edges;
}

std::vector<LiveEdge> read_edge_records_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_edge_records(in);
}

void write_edge_records(std::span<const LiveEdge> edges, std::ostream& out) {
  bool any_weight = false;
  bool any_timestamp = false;
  for (const LiveEdge& edge : edges) {
    any_weight = any_weight || edge.weight != 1.0;
    any_timestamp = any_timestamp || edge.timestamp != graph::kNoTimestamp;
  }
  std::string buffer;
  for (const LiveEdge& edge : edges) {
    buffer.clear();
    buffer += std::to_string(edge.u);
    buffer += ' ';
    buffer += std::to_string(edge.v);
    if (any_weight || any_timestamp) {
      buffer += ' ';
      append_double(buffer, edge.weight);
    }
    if (any_timestamp) {
      buffer += ' ';
      append_double(buffer, edge.timestamp);
    }
    buffer += '\n';
    out << buffer;
  }
}

void write_edge_records_file(std::span<const LiveEdge> edges,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_edge_records(edges, out);
  if (!out) throw std::runtime_error("cannot write " + path);
}

}  // namespace v2v::dynamic
