// Delta-overlay graph for streaming workloads.
//
// DynamicGraph layers edge insertions/deletions over an immutable CSR
// base (graph::Graph). The canonical state is an insertion-ordered edge
// record list with tombstones; a prefix of it is compiled into the CSR
// base, the suffix lives in per-vertex overlay indexes so merged
// adjacency reads stay O(degree). Compaction replays the surviving
// records — in their original insertion order — through GraphBuilder,
// which makes the compacted CSR *bit-identical* to building a fresh
// graph from the merged edge set (tested in tests/dynamic/).
//
// Every mutation marks both endpoints dirty; the refresh pipeline
// drains the dirty set to decide which walks to regenerate. All public
// methods are thread-safe (internal v2v::Mutex, rank kDynamicGraph);
// the one exception is base(), which returns a reference that is only
// stable while no thread compacts — see its comment.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "v2v/common/sync.hpp"
#include "v2v/graph/graph.hpp"

namespace v2v::dynamic {

/// One streaming mutation. Removal matches by endpoints only (first
/// surviving edge between u and v, either orientation when undirected);
/// weight/timestamp are ignored for removals.
struct EdgeDelta {
  enum class Op : std::uint8_t { kInsert, kRemove };
  Op op = Op::kInsert;
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  double weight = 1.0;
  double timestamp = graph::kNoTimestamp;

  friend bool operator==(const EdgeDelta&, const EdgeDelta&) = default;
};

/// A surviving logical edge, in canonical (insertion) order.
struct LiveEdge {
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  double weight = 1.0;
  double timestamp = graph::kNoTimestamp;
};

struct DynamicGraphConfig {
  /// maybe_compact() compacts once the overlay holds at least this many
  /// mutations...
  std::size_t compact_min_delta = 1024;
  /// ...or once mutations exceed this fraction of the base edge count.
  double compact_ratio = 0.25;
};

class DynamicGraph {
 public:
  explicit DynamicGraph(bool directed = false, DynamicGraphConfig config = {});

  // Movable (so it can be returned from factories and owned by value);
  // assignment would need two same-rank locks, so it stays deleted.
  DynamicGraph(DynamicGraph&&) noexcept;
  DynamicGraph& operator=(DynamicGraph&&) = delete;
  DynamicGraph(const DynamicGraph&) = delete;
  DynamicGraph& operator=(const DynamicGraph&) = delete;
  ~DynamicGraph();

  [[nodiscard]] bool directed() const noexcept { return directed_; }
  [[nodiscard]] const DynamicGraphConfig& config() const noexcept { return config_; }

  /// Ensures at least `n` vertices exist (isolated vertices allowed).
  void reserve_vertices(std::size_t n);

  /// Inserts an edge (parallel edges and self-loops follow GraphBuilder
  /// semantics). Throws std::invalid_argument on negative weight.
  void add_edge(graph::VertexId u, graph::VertexId v, double weight = 1.0,
                double timestamp = graph::kNoTimestamp);

  /// Removes the first surviving edge between u and v (either orientation
  /// when undirected). Returns false when no such edge exists.
  bool remove_edge(graph::VertexId u, graph::VertexId v);

  /// Applies one delta; returns false for a remove that matched nothing.
  bool apply(const EdgeDelta& delta);

  /// Applies a batch; returns how many deltas took effect.
  std::size_t apply(std::span<const EdgeDelta> deltas);

  [[nodiscard]] std::size_t vertex_count() const;
  /// Surviving logical edges (arcs for directed, edges for undirected).
  [[nodiscard]] std::size_t edge_count() const;
  /// Mutations (inserts + effective removes) accumulated since the last
  /// compaction.
  [[nodiscard]] std::size_t delta_arcs() const;

  /// Merged adjacency of v: base arcs (minus removed ones, in CSR order)
  /// followed by overlay arcs in insertion order. O(degree + removed(v)).
  void merged_arcs(graph::VertexId v, std::vector<graph::Arc>& out) const;
  [[nodiscard]] std::size_t merged_degree(graph::VertexId v) const;
  [[nodiscard]] bool has_edge(graph::VertexId u, graph::VertexId v) const;

  /// Vertices whose neighborhood changed since the last drain, sorted.
  [[nodiscard]] std::vector<graph::VertexId> dirty_vertices() const;
  [[nodiscard]] std::size_t dirty_count() const;
  /// Returns the sorted dirty set and clears it.
  [[nodiscard]] std::vector<graph::VertexId> drain_dirty();

  /// The CSR as of the last compaction. The reference is stable only
  /// while no thread calls compact()/maybe_compact(); the refresh driver
  /// guarantees this by quiescing mutators before walking.
  [[nodiscard]] const graph::Graph& base() const noexcept { return base_; }

  [[nodiscard]] bool compaction_due() const;
  /// Compacts when the configured threshold is reached; returns whether
  /// a compaction ran.
  bool maybe_compact();
  /// Rebuilds the CSR base from the surviving records and clears the
  /// overlay. Does NOT clear the dirty set (refresh owns that).
  void compact();

  /// From-scratch CSR over the surviving records, without mutating the
  /// overlay. compact() produces exactly this graph (the bit-identity
  /// contract).
  [[nodiscard]] graph::Graph build_fresh_csr() const;

  /// Surviving edges in canonical insertion order. Feeding these back
  /// through add_edge reproduces this graph's compacted CSR exactly.
  [[nodiscard]] std::vector<LiveEdge> live_edges() const;

 private:
  struct Record {
    graph::VertexId u, v;
    double weight;
    double timestamp;
    bool alive;
  };

  [[nodiscard]] std::uint64_t pair_key(graph::VertexId u,
                                       graph::VertexId v) const noexcept;
  void index_record(std::uint32_t id) V2V_REQUIRES(mutex_);
  void compact_locked() V2V_REQUIRES(mutex_);
  [[nodiscard]] bool compaction_due_locked() const V2V_REQUIRES(mutex_);
  [[nodiscard]] graph::Graph build_locked() const V2V_REQUIRES(mutex_);

  mutable Mutex mutex_{"dynamic::DynamicGraph", lock_rank::kDynamicGraph};
  bool directed_ = false;
  DynamicGraphConfig config_;

  /// Canonical edge list, insertion order, tombstoned by `alive`.
  std::vector<Record> records_ V2V_GUARDED_BY(mutex_);
  /// records_[0..base_records_) are compiled into base_.
  std::size_t base_records_ V2V_GUARDED_BY(mutex_) = 0;
  std::size_t live_edges_ V2V_GUARDED_BY(mutex_) = 0;
  std::size_t mutations_since_compact_ V2V_GUARDED_BY(mutex_) = 0;
  std::size_t vertex_count_ V2V_GUARDED_BY(mutex_) = 0;

  // base_ is written only by compact_locked() under mutex_ and read
  // unlocked via base(); see base()'s stability contract.
  graph::Graph base_;

  /// (u,v) pair key -> surviving record ids, for O(1)-ish removal.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_pair_
      V2V_GUARDED_BY(mutex_);
  /// vertex -> overlay record ids (>= base_records_); undirected records
  /// appear under both endpoints (twice for self-loops, matching the two
  /// CSR arcs they compile to).
  std::unordered_map<graph::VertexId, std::vector<std::uint32_t>> overlay_
      V2V_GUARDED_BY(mutex_);
  /// vertex -> targets of base arcs that were removed (multiset).
  std::unordered_map<graph::VertexId, std::vector<graph::VertexId>> removed_base_
      V2V_GUARDED_BY(mutex_);
  std::vector<bool> dirty_ V2V_GUARDED_BY(mutex_);
  std::size_t dirty_count_ V2V_GUARDED_BY(mutex_) = 0;
};

}  // namespace v2v::dynamic
