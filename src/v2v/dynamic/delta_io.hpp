// Edge-delta file I/O. Text format, one mutation per line:
//
//   a <u> <v> [weight [timestamp]]   insert an edge
//   d <u> <v>                        remove an edge (endpoints only)
//
// '#' starts a comment; blank lines are skipped. Parse errors throw
// std::runtime_error naming the offending line — never undefined
// behavior (the parser is fuzzed in fuzz/fuzz_edge_delta.cpp, and
// write_deltas() is its seed encoder: encode(parse(x)) == canonical
// form, parse(encode(d)) == d).
//
// Also hosts the raw edge-list record reader the refresh tool uses to
// rebuild a DynamicGraph in the exact insertion order of the original
// `v2v_tool embed` run (same order -> bit-identical compacted CSR).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "v2v/dynamic/dynamic_graph.hpp"

namespace v2v::dynamic {

[[nodiscard]] std::vector<EdgeDelta> parse_deltas(std::string_view text);
[[nodiscard]] std::vector<EdgeDelta> read_deltas(std::istream& in);
[[nodiscard]] std::vector<EdgeDelta> read_delta_file(const std::string& path);

void write_deltas(std::span<const EdgeDelta> deltas, std::ostream& out);
[[nodiscard]] std::string encode_deltas(std::span<const EdgeDelta> deltas);
void write_delta_file(std::span<const EdgeDelta> deltas, const std::string& path);

/// Edge-list records in file order ("u v [weight [timestamp]]", same
/// format as graph/io.hpp but kept as a list instead of a CSR).
[[nodiscard]] std::vector<LiveEdge> read_edge_records(std::istream& in);
[[nodiscard]] std::vector<LiveEdge> read_edge_records_file(const std::string& path);

/// One line per logical edge; weight/timestamp columns only when present.
void write_edge_records(std::span<const LiveEdge> edges, std::ostream& out);
void write_edge_records_file(std::span<const LiveEdge> edges,
                             const std::string& path);

}  // namespace v2v::dynamic
