// The dynamic-refresh driver: edge churn in, refreshed embedding out.
//
// A RefreshSession owns the DynamicGraph, the current corpus + walk
// provenance index, the embedding, and the trainer checkpoint. Each
// refresh() round:
//
//   drain dirty set -> compact the graph -> regenerate only the walk
//   blocks that touched a dirty vertex (incremental_walks.hpp) ->
//   continue SGD from the warm embedding + checkpoint
//   (embed::train_embedding_resume) for a few cheap epochs.
//
// Invariant maintained across rounds: the session corpus always equals
// walk::generate_corpus(graph.base(), walk_config, walk_seed) exactly —
// incremental regeneration is an optimization, never an approximation.
// full_retrain() is the A/B escape hatch: same walk seed, cold-start
// training, resets the warm-start lineage.
//
// Mutations applied BEFORE the session is constructed are part of the
// baseline (the constructor compacts and clears the dirty set); only
// apply()ed deltas count as churn.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "v2v/dynamic/dynamic_graph.hpp"
#include "v2v/dynamic/incremental_walks.hpp"
#include "v2v/embed/trainer.hpp"
#include "v2v/walk/corpus_spool.hpp"
#include "v2v/walk/walk_index.hpp"

namespace v2v::obs {
class MetricsRegistry;
}  // namespace v2v::obs

namespace v2v::dynamic {

/// Knobs of the incremental-refresh path (config-file keys refresh.*).
struct RefreshTuning {
  /// Continued-SGD passes per refresh (count; a fraction of a full
  /// retrain's epochs is the whole point).
  std::size_t epochs = 2;
  /// Starting step size of a refresh run; 0 (default) continues from the
  /// checkpoint's decayed last_lr.
  double initial_lr = 0.0;
  /// DynamicGraph compaction thresholds (see DynamicGraphConfig).
  std::size_t compact_min_delta = 1024;
  double compact_ratio = 0.25;

  [[nodiscard]] DynamicGraphConfig graph_config() const noexcept {
    return DynamicGraphConfig{compact_min_delta, compact_ratio};
  }
};

struct RefreshStats {
  std::size_t dirty_vertices = 0;      ///< drained this round
  std::size_t regenerated_starts = 0;  ///< walk blocks re-walked
  std::size_t reused_starts = 0;       ///< walk blocks spliced through
  std::size_t invalidated_walks = 0;   ///< old walks discarded
  double walk_seconds = 0.0;
  double train_seconds = 0.0;
  double total_seconds = 0.0;
  bool full_retrain = false;
  embed::TrainStats train;
};

class RefreshSession {
 public:
  /// Bootstrap: generates the corpus and trains from scratch on the
  /// graph's current state (checkpoint captured for later refreshes).
  /// `seed` is the master seed, split into walk/train seeds exactly like
  /// learn_embedding, so a bootstrap matches a v2v_tool embed run.
  RefreshSession(DynamicGraph graph, const walk::WalkConfig& walk_config,
                 const embed::TrainConfig& train_config,
                 const RefreshTuning& tuning, std::uint64_t seed,
                 obs::MetricsRegistry* metrics = nullptr);

  /// Resume: picks up a persisted embedding + checkpoint (snapshot v3).
  /// `graph` must hold the edge set the snapshot was trained on, in the
  /// original insertion order; the old corpus is regenerated
  /// deterministically from checkpoint.walk_seed. walk_config must agree
  /// with the checkpoint's walks_per_vertex/walk_length.
  RefreshSession(DynamicGraph graph, embed::Embedding warm_start,
                 embed::TrainerCheckpoint checkpoint,
                 const walk::WalkConfig& walk_config,
                 const embed::TrainConfig& train_config,
                 const RefreshTuning& tuning,
                 obs::MetricsRegistry* metrics = nullptr);

  void apply(const EdgeDelta& delta) { graph_.apply(delta); }
  std::size_t apply(std::span<const EdgeDelta> deltas) {
    return graph_.apply(deltas);
  }

  /// Incremental refresh: dirty walks + continued SGD. No-op-ish when
  /// nothing is dirty (still retrains tuning.epochs over the corpus).
  RefreshStats refresh();

  /// Full regeneration + cold-start retrain (A/B escape hatch).
  RefreshStats full_retrain();

  [[nodiscard]] DynamicGraph& graph() noexcept { return graph_; }
  [[nodiscard]] const DynamicGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const embed::Embedding& embedding() const noexcept {
    return embedding_;
  }
  [[nodiscard]] const embed::TrainerCheckpoint& checkpoint() const noexcept {
    return checkpoint_;
  }
  /// The RAM-resident session corpus. Empty while the corpus lives in the
  /// disk spool (walk_config.spool_dir set and no refresh() round has
  /// materialized it yet) — check spooled() first.
  [[nodiscard]] const walk::Corpus& corpus() const noexcept { return corpus_; }
  /// True while the session corpus is backed by the disk spool instead of
  /// corpus_. Bootstrap/resume with walk_config.spool_dir set starts
  /// spooled; the first refresh() materializes the merged corpus in RAM.
  [[nodiscard]] bool spooled() const noexcept { return spool_.has_value(); }
  [[nodiscard]] const walk::WalkConfig& walk_config() const noexcept {
    return walk_config_;
  }
  [[nodiscard]] std::uint64_t walk_seed() const noexcept { return walk_seed_; }

 private:
  /// (Re)creates the session corpus from graph_.base() at walk_seed_:
  /// spooled to walk_config_.spool_dir when set, RAM-resident otherwise.
  void regenerate_corpus();
  void rebuild_index();
  [[nodiscard]] embed::TrainConfig refresh_train_config() const;
  void record_stats(const RefreshStats& stats) const;

  DynamicGraph graph_;
  walk::WalkConfig walk_config_;
  embed::TrainConfig train_config_;  ///< full-retrain config (bootstrap epochs)
  RefreshTuning tuning_;
  std::uint64_t walk_seed_ = 0;
  walk::Corpus corpus_;
  /// Disk-backed session corpus (exactly one of corpus_ / spool_ is the
  /// live one; spool_ engaged iff spooled()).
  std::optional<walk::SpooledCorpus> spool_;
  walk::WalkIndex index_;
  embed::Embedding embedding_;
  embed::TrainerCheckpoint checkpoint_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace v2v::dynamic
