#include "v2v/dynamic/dynamic_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "v2v/common/check.hpp"

namespace v2v::dynamic {

namespace {

constexpr std::uint32_t kMaxRecords = 0xffffffffu;

}  // namespace

DynamicGraph::DynamicGraph(bool directed, DynamicGraphConfig config)
    : directed_(directed), config_(config) {
  if (config_.compact_ratio <= 0.0) {
    throw std::invalid_argument("DynamicGraph: compact_ratio must be > 0");
  }
}

DynamicGraph::~DynamicGraph() = default;

DynamicGraph::DynamicGraph(DynamicGraph&& other) noexcept {
  LockGuard lock(other.mutex_);
  directed_ = other.directed_;
  config_ = other.config_;
  records_ = std::move(other.records_);
  base_records_ = other.base_records_;
  live_edges_ = other.live_edges_;
  mutations_since_compact_ = other.mutations_since_compact_;
  vertex_count_ = other.vertex_count_;
  base_ = std::move(other.base_);
  by_pair_ = std::move(other.by_pair_);
  overlay_ = std::move(other.overlay_);
  removed_base_ = std::move(other.removed_base_);
  dirty_ = std::move(other.dirty_);
  dirty_count_ = other.dirty_count_;
}

std::uint64_t DynamicGraph::pair_key(graph::VertexId u,
                                     graph::VertexId v) const noexcept {
  if (!directed_ && u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

void DynamicGraph::reserve_vertices(std::size_t n) {
  LockGuard lock(mutex_);
  vertex_count_ = std::max(vertex_count_, n);
}

void DynamicGraph::index_record(std::uint32_t id) {
  const Record& rec = records_[id];
  by_pair_[pair_key(rec.u, rec.v)].push_back(id);
  if (id >= base_records_) {
    overlay_[rec.u].push_back(id);
    // Undirected records compile to two arcs; a self-loop contributes
    // both of them to the same adjacency, so index it twice.
    if (!directed_) overlay_[rec.v].push_back(id);
  }
}

void DynamicGraph::add_edge(graph::VertexId u, graph::VertexId v, double weight,
                            double timestamp) {
  if (weight < 0.0) {
    throw std::invalid_argument("DynamicGraph::add_edge: negative weight");
  }
  LockGuard lock(mutex_);
  V2V_CHECK(records_.size() < kMaxRecords,
            "DynamicGraph: edge record count exceeds 2^32");
  const auto id = static_cast<std::uint32_t>(records_.size());
  records_.push_back(Record{u, v, weight, timestamp, true});
  index_record(id);
  vertex_count_ = std::max(vertex_count_,
                           static_cast<std::size_t>(std::max(u, v)) + 1);
  if (dirty_.size() < vertex_count_) dirty_.resize(vertex_count_, false);
  ++live_edges_;
  ++mutations_since_compact_;
  for (const graph::VertexId d : {u, v}) {
    if (!dirty_[d]) {
      dirty_[d] = true;
      ++dirty_count_;
    }
  }
}

bool DynamicGraph::remove_edge(graph::VertexId u, graph::VertexId v) {
  LockGuard lock(mutex_);
  const auto it = by_pair_.find(pair_key(u, v));
  if (it == by_pair_.end()) return false;
  auto& ids = it->second;
  // Record order == first matching arc in CSR order (the counting-sort
  // scatter preserves per-source insertion order), so "first surviving
  // record" is also the deterministic choice a CSR scan would make.
  auto pos = std::find_if(ids.begin(), ids.end(), [&](std::uint32_t id) {
    return records_[id].alive;
  });
  if (pos == ids.end()) return false;
  const std::uint32_t id = *pos;
  ids.erase(pos);
  if (ids.empty()) by_pair_.erase(it);
  Record& rec = records_[id];
  rec.alive = false;
  if (id < base_records_) {
    removed_base_[rec.u].push_back(rec.v);
    if (!directed_) removed_base_[rec.v].push_back(rec.u);
  }
  --live_edges_;
  ++mutations_since_compact_;
  if (dirty_.size() < vertex_count_) dirty_.resize(vertex_count_, false);
  for (const graph::VertexId d : {rec.u, rec.v}) {
    if (!dirty_[d]) {
      dirty_[d] = true;
      ++dirty_count_;
    }
  }
  return true;
}

bool DynamicGraph::apply(const EdgeDelta& delta) {
  if (delta.op == EdgeDelta::Op::kInsert) {
    add_edge(delta.u, delta.v, delta.weight, delta.timestamp);
    return true;
  }
  return remove_edge(delta.u, delta.v);
}

std::size_t DynamicGraph::apply(std::span<const EdgeDelta> deltas) {
  std::size_t applied = 0;
  for (const EdgeDelta& delta : deltas) {
    if (apply(delta)) ++applied;
  }
  return applied;
}

std::size_t DynamicGraph::vertex_count() const {
  LockGuard lock(mutex_);
  return vertex_count_;
}

std::size_t DynamicGraph::edge_count() const {
  LockGuard lock(mutex_);
  return live_edges_;
}

std::size_t DynamicGraph::delta_arcs() const {
  LockGuard lock(mutex_);
  return mutations_since_compact_;
}

void DynamicGraph::merged_arcs(graph::VertexId v,
                               std::vector<graph::Arc>& out) const {
  out.clear();
  LockGuard lock(mutex_);
  if (v >= vertex_count_) return;
  if (v < base_.vertex_count()) {
    // Base arcs minus removed ones, preserving CSR order. `removed` is a
    // scratch multiset of targets; each match consumes one entry so
    // parallel edges are removed one at a time.
    std::vector<graph::VertexId> removed;
    if (const auto it = removed_base_.find(v); it != removed_base_.end()) {
      removed = it->second;
    }
    const auto targets = base_.neighbors(v);
    const auto weights = base_.arc_weights(v);
    const auto timestamps = base_.arc_timestamps(v);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (!removed.empty()) {
        const auto hit = std::find(removed.begin(), removed.end(), targets[i]);
        if (hit != removed.end()) {
          removed.erase(hit);
          continue;
        }
      }
      out.push_back(graph::Arc{targets[i],
                               weights.empty() ? 1.0 : weights[i],
                               timestamps.empty() ? graph::kNoTimestamp
                                                  : timestamps[i]});
    }
  }
  if (const auto it = overlay_.find(v); it != overlay_.end()) {
    for (const std::uint32_t id : it->second) {
      const Record& rec = records_[id];
      if (!rec.alive) continue;
      const graph::VertexId target = rec.u == v ? rec.v : rec.u;
      out.push_back(graph::Arc{target, rec.weight, rec.timestamp});
    }
  }
}

std::size_t DynamicGraph::merged_degree(graph::VertexId v) const {
  LockGuard lock(mutex_);
  if (v >= vertex_count_) return 0;
  std::size_t degree = 0;
  if (v < base_.vertex_count()) {
    degree = base_.out_degree(v);
    if (const auto it = removed_base_.find(v); it != removed_base_.end()) {
      degree -= it->second.size();
    }
  }
  if (const auto it = overlay_.find(v); it != overlay_.end()) {
    for (const std::uint32_t id : it->second) {
      if (records_[id].alive) ++degree;
    }
  }
  return degree;
}

bool DynamicGraph::has_edge(graph::VertexId u, graph::VertexId v) const {
  LockGuard lock(mutex_);
  const auto it = by_pair_.find(pair_key(u, v));
  if (it == by_pair_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](std::uint32_t id) { return records_[id].alive; });
}

std::vector<graph::VertexId> DynamicGraph::dirty_vertices() const {
  LockGuard lock(mutex_);
  std::vector<graph::VertexId> out;
  out.reserve(dirty_count_);
  for (std::size_t v = 0; v < dirty_.size(); ++v) {
    if (dirty_[v]) out.push_back(static_cast<graph::VertexId>(v));
  }
  return out;
}

std::size_t DynamicGraph::dirty_count() const {
  LockGuard lock(mutex_);
  return dirty_count_;
}

std::vector<graph::VertexId> DynamicGraph::drain_dirty() {
  LockGuard lock(mutex_);
  std::vector<graph::VertexId> out;
  out.reserve(dirty_count_);
  for (std::size_t v = 0; v < dirty_.size(); ++v) {
    if (dirty_[v]) out.push_back(static_cast<graph::VertexId>(v));
  }
  std::fill(dirty_.begin(), dirty_.end(), false);
  dirty_count_ = 0;
  return out;
}

bool DynamicGraph::compaction_due_locked() const {
  if (mutations_since_compact_ == 0) return false;
  if (mutations_since_compact_ >= config_.compact_min_delta) return true;
  const auto base_edges = static_cast<double>(base_.edge_count());
  return static_cast<double>(mutations_since_compact_) >
         config_.compact_ratio * base_edges;
}

bool DynamicGraph::compaction_due() const {
  LockGuard lock(mutex_);
  return compaction_due_locked();
}

bool DynamicGraph::maybe_compact() {
  LockGuard lock(mutex_);
  if (!compaction_due_locked()) return false;
  compact_locked();
  return true;
}

void DynamicGraph::compact() {
  LockGuard lock(mutex_);
  compact_locked();
}

graph::Graph DynamicGraph::build_locked() const {
  graph::GraphBuilder builder(directed_);
  builder.reserve_vertices(vertex_count_);
  for (const Record& rec : records_) {
    if (rec.alive) builder.add_edge(rec.u, rec.v, rec.weight, rec.timestamp);
  }
  return builder.build();
}

void DynamicGraph::compact_locked() {
  base_ = build_locked();
  // Prune tombstones: the surviving records in insertion order ARE the
  // canonical edge list of the new base.
  std::vector<Record> survivors;
  survivors.reserve(live_edges_);
  for (const Record& rec : records_) {
    if (rec.alive) survivors.push_back(rec);
  }
  records_ = std::move(survivors);
  base_records_ = records_.size();
  overlay_.clear();
  removed_base_.clear();
  by_pair_.clear();
  for (std::uint32_t id = 0; id < records_.size(); ++id) index_record(id);
  mutations_since_compact_ = 0;
}

graph::Graph DynamicGraph::build_fresh_csr() const {
  LockGuard lock(mutex_);
  return build_locked();
}

std::vector<LiveEdge> DynamicGraph::live_edges() const {
  LockGuard lock(mutex_);
  std::vector<LiveEdge> out;
  out.reserve(live_edges_);
  for (const Record& rec : records_) {
    if (rec.alive) out.push_back(LiveEdge{rec.u, rec.v, rec.weight, rec.timestamp});
  }
  return out;
}

}  // namespace v2v::dynamic
