#include "v2v/dynamic/incremental_walks.hpp"

#include <algorithm>
#include <vector>

#include "v2v/common/check.hpp"
#include "v2v/common/rng.hpp"
#include "v2v/common/thread_pool.hpp"

namespace v2v::dynamic {

IncrementalWalkResult regenerate_corpus_incremental(
    const graph::Graph& g, const walk::WalkConfig& config, std::uint64_t seed,
    const walk::Corpus& old_corpus, const walk::WalkIndex& old_index,
    std::span<const graph::VertexId> dirty) {
  const walk::InMemoryCorpus reader(old_corpus);
  return regenerate_corpus_incremental(
      g, config, seed, static_cast<const walk::CorpusReader&>(reader), old_index,
      dirty);
}

IncrementalWalkResult regenerate_corpus_incremental(
    const graph::Graph& g, const walk::WalkConfig& config, std::uint64_t seed,
    const walk::CorpusReader& old_corpus, const walk::WalkIndex& old_index,
    std::span<const graph::VertexId> dirty) {
  const std::size_t walks_per_vertex = config.walks_per_vertex;
  V2V_CHECK(walks_per_vertex > 0, "incremental walks: walks_per_vertex == 0");
  V2V_CHECK(old_corpus.walk_count() % walks_per_vertex == 0,
            "incremental walks: old corpus is not start-vertex blocked");
  const std::size_t old_n = old_corpus.walk_count() / walks_per_vertex;
  V2V_CHECK(old_index.walk_count() == old_corpus.walk_count(),
            "incremental walks: index does not match the old corpus");
  const std::size_t n = g.vertex_count();
  V2V_CHECK(n >= old_n, "incremental walks: graph lost vertices");

  // Mark affected start vertices: dirty ones, plus the owners of every
  // old walk that visited a dirty vertex. New vertices (>= old_n) have no
  // old walks and are always regenerated.
  std::vector<bool> affected(n, false);
  for (const graph::VertexId d : dirty) {
    if (d >= n) continue;
    affected[d] = true;
    if (d < old_index.vertex_count()) {
      for (const std::uint32_t walk_id : old_index.walks_visiting(d)) {
        affected[walk_id / walks_per_vertex] = true;
      }
    }
  }
  for (std::size_t v = old_n; v < n; ++v) affected[v] = true;

  // Mirror generate_corpus's sharding exactly (same grain, same chunk
  // order, same per-vertex RNG forks) so the merged corpus is
  // token-for-token what a full regeneration would produce.
  const walk::Walker walker(g, config);
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  const std::size_t grain =
      config.grain != 0 ? config.grain : default_grain(n, threads);
  const std::size_t chunks = chunk_count(n, grain);

  std::vector<walk::Corpus> shards(chunks);
  std::vector<std::size_t> shard_regenerated(chunks, 0);
  const Rng root(seed);
  parallel_for_dynamic(
      threads, n, grain,
      [&](std::size_t /*worker*/, std::size_t chunk, std::size_t begin,
          std::size_t end) {
        walk::Corpus& shard = shards[chunk];
        shard.reserve((end - begin) * walks_per_vertex,
                      (end - begin) * walks_per_vertex * config.walk_length);
        std::vector<graph::VertexId> buffer;
        buffer.reserve(config.walk_length);
        for (std::size_t v = begin; v < end; ++v) {
          if (affected[v]) {
            // Whole block re-walked: the block is the unit of RNG
            // determinism (one fork per start vertex).
            Rng rng = root.fork(v);
            for (std::size_t w = 0; w < walks_per_vertex; ++w) {
              walker.walk_from(static_cast<graph::VertexId>(v), rng, buffer);
              shard.add_walk(buffer);
            }
            ++shard_regenerated[chunk];
          } else {
            for (std::size_t w = 0; w < walks_per_vertex; ++w) {
              shard.add_walk(old_corpus.walk(v * walks_per_vertex + w));
            }
          }
        }
      });

  IncrementalWalkResult result;
  for (const std::size_t count : shard_regenerated) {
    result.regenerated_starts += count;
  }
  result.reused_starts = n - result.regenerated_starts;
  // Invalidated = affected starts that HAD old walks (new vertices never
  // had any to discard).
  std::size_t affected_old = 0;
  for (std::size_t v = 0; v < old_n; ++v) {
    if (affected[v]) ++affected_old;
  }
  result.invalidated_walks = affected_old * walks_per_vertex;

  if (chunks == 1) {
    result.corpus = std::move(shards[0]);
    return result;
  }
  walk::Corpus merged;
  for (auto& shard : shards) merged.append(std::move(shard));
  result.corpus = std::move(merged);
  return result;
}

}  // namespace v2v::dynamic
