#include "v2v/index/flat_index.hpp"

#include <algorithm>
#include <cmath>

#include "v2v/common/kernels.hpp"

namespace v2v::index {

FlatIndex::FlatIndex(store::EmbeddingView data, DistanceMetric metric)
    : data_(data), metric_(metric) {
  if (metric_ == DistanceMetric::kCosine) {
    norms_.resize(data_.rows());
    for (std::size_t r = 0; r < data_.rows(); ++r) {
      const auto row = data_.row(r);
      norms_[r] = std::sqrt(kernels::ddot(row.data(), row.data(), row.size()));
    }
  }
}

void FlatIndex::search_into(std::span<const float> query, std::size_t k,
                            std::vector<Neighbor>& out) const {
  out.clear();
  k = std::min(k, data_.rows());
  if (k == 0) return;

  thread_local std::vector<Neighbor> scored;
  scored.clear();
  scored.reserve(data_.rows());

  const float* q = query.data();
  const std::size_t d = data_.dimensions();
  if (metric_ == DistanceMetric::kCosine) {
    // Same arithmetic as vec_math cosine_distance: 1 - dot / (nq * nr),
    // zero vectors maximally distant. nq is hoisted out of the row loop;
    // it is the identical sqrt(ddot(q, q)) value per row, so results stay
    // bit-identical to the per-pair formulation.
    const double nq = std::sqrt(kernels::ddot(q, q, d));
    for (std::size_t r = 0; r < data_.rows(); ++r) {
      const double nr = norms_[r];
      const double dist =
          (nq == 0.0 || nr == 0.0)
              ? 1.0
              : 1.0 - kernels::ddot(q, data_.row(r).data(), d) / (nq * nr);
      scored.push_back({static_cast<std::uint32_t>(r), dist});
    }
  } else {
    for (std::size_t r = 0; r < data_.rows(); ++r) {
      scored.push_back({static_cast<std::uint32_t>(r),
                        kernels::sqdist(q, data_.row(r).data(), d)});
    }
  }

  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
                    scored.end(), neighbor_less);
  out.assign(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k));
}

double FlatIndex::warm_rows(std::size_t begin, std::size_t end) const {
  double sum = 0.0;
  end = std::min(end, data_.rows());
  for (std::size_t r = begin; r < end; ++r) {
    const auto row = data_.row(r);
    sum += kernels::ddot(row.data(), row.data(), row.size());
  }
  return sum;
}

}  // namespace v2v::index
