#include "v2v/index/query_engine.hpp"

#include <algorithm>

#include "v2v/common/kernels.hpp"
#include "v2v/common/timer.hpp"
#include "v2v/obs/metrics.hpp"

namespace v2v::index {

namespace {
// Latency buckets: 0..20ms in ~78us bins covers flat scans over hundreds
// of thousands of rows; slower queries clamp into the top bin but keep
// exact min/max.
constexpr obs::HistogramConfig kLatencyBuckets{0.0, 20000.0, 256};
}  // namespace

QueryEngine::QueryEngine(const VectorIndex& index, QueryEngineConfig config)
    : index_(index), metrics_(config.metrics) {
  if (metrics_ != nullptr) {
    queries_ = &metrics_->counter("query.queries");
    latency_us_ = &metrics_->histogram("query.latency_us", kLatencyBuckets);
  }
  if (config.threads > 1) pool_ = std::make_unique<ThreadPool>(config.threads);
}

std::size_t QueryEngine::threads() const noexcept {
  return pool_ ? pool_->size() : 1;
}

void QueryEngine::query_into(std::span<const float> q, std::size_t k,
                             std::vector<Neighbor>& out) const {
  const WallTimer timer;
  index_.search_into(q, k, out);
  if (queries_ != nullptr) {
    queries_->add(1);
    latency_us_->record(timer.seconds() * 1e6);
  }
}

std::vector<Neighbor> QueryEngine::query(std::span<const float> q,
                                         std::size_t k) const {
  std::vector<Neighbor> out;
  query_into(q, k, out);
  return out;
}

template <typename RowAt>
std::vector<std::vector<Neighbor>> QueryEngine::run_batch(
    std::size_t count, std::size_t k, const RowAt& row_at) const {
  std::vector<std::vector<Neighbor>> out(count);
  if (count == 0) return out;
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i) query_into(row_at(i), k, out[i]);
    return out;
  }
  pool_->parallel_for(count, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) query_into(row_at(i), k, out[i]);
  });
  return out;
}

std::vector<std::vector<Neighbor>> QueryEngine::query_batch(
    const MatrixF& queries, std::size_t k) const {
  return run_batch(queries.rows(), k,
                   [&](std::size_t i) { return queries.row(i); });
}

std::vector<std::vector<Neighbor>> QueryEngine::query_rows(
    const MatrixF& points, std::span<const std::size_t> rows,
    std::size_t k) const {
  return run_batch(rows.size(), k,
                   [&](std::size_t i) { return points.row(rows[i]); });
}

void QueryEngine::warmup() const {
  const WallTimer timer;
  const std::size_t n = index_.size();
  // Accumulating warm_rows' data-dependent result into an atomic member
  // keeps the row reads observable so they cannot be optimized away.
  if (pool_ != nullptr) {
    pool_->parallel_for(n, [&](std::size_t, std::size_t begin, std::size_t end) {
      warmup_sink_.fetch_add(index_.warm_rows(begin, end),
                             std::memory_order_relaxed);
    });
  } else {
    warmup_sink_.fetch_add(index_.warm_rows(0, n), std::memory_order_relaxed);
  }
  if (metrics_ != nullptr) {
    metrics_->gauge("query.warmup_seconds").set(timer.seconds());
  }
}

double QueryEngine::observe_recall(
    const std::vector<std::vector<Neighbor>>& truth,
    const std::vector<std::vector<Neighbor>>& results) const {
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < truth.size() && i < results.size(); ++i) {
    if (truth[i].empty()) continue;
    std::size_t hits = 0;
    for (const Neighbor& t : truth[i]) {
      for (const Neighbor& r : results[i]) {
        if (r.id == t.id) {
          ++hits;
          break;
        }
      }
    }
    total += static_cast<double>(hits) / static_cast<double>(truth[i].size());
    ++counted;
  }
  const double recall =
      counted == 0 ? 0.0 : total / static_cast<double>(counted);
  if (metrics_ != nullptr) metrics_->gauge("query.recall_at_k").set(recall);
  return recall;
}

}  // namespace v2v::index
