#include "v2v/index/sq_index.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "v2v/common/kernels.hpp"
#include "v2v/common/thread_pool.hpp"
#include "v2v/common/vec_math.hpp"
#include "v2v/store/snapshot.hpp"

namespace v2v::index {
namespace {

[[noreturn]] void bad_sections(const std::string& detail) {
  throw store::SnapshotError(store::SnapshotErrorCode::kBadHeader,
                             "snapshot: " + detail);
}

}  // namespace

SqIndex::SqIndex(store::EmbeddingView data, DistanceMetric metric,
                 SqConfig config)
    : rows_(data.rows()), dims_(data.dimensions()), metric_(metric),
      rerank_(config.rerank) {
  if (rows_ == 0) throw std::invalid_argument("sq8: empty embedding");
  const bool cosine = metric_ == DistanceMetric::kCosine;
  const std::size_t threads = std::max<std::size_t>(1, config.threads);

  // Metric-normalized working copy, same convention as IvfIndex: cosine
  // rows are unit (zero rows stay zero), Euclidean rows verbatim.
  MatrixF normalized(rows_, dims_);
  parallel_for_dynamic(threads, rows_, 0,
                       [&](std::size_t, std::size_t, std::size_t begin,
                           std::size_t end) {
                         for (std::size_t r = begin; r < end; ++r) {
                           const auto src = data.row(r);
                           const auto dst = normalized.row(r);
                           std::copy(src.begin(), src.end(), dst.begin());
                           if (cosine) normalize(dst);
                         }
                       });

  quant_ = Sq8Quantizer::train(normalized);
  codes_owned_.resize(rows_ * dims_);
  parallel_for_dynamic(threads, rows_, 0,
                       [&](std::size_t, std::size_t, std::size_t begin,
                           std::size_t end) {
                         for (std::size_t r = begin; r < end; ++r) {
                           quant_.encode_row(normalized.row(r),
                                             codes_owned_.data() + r * dims_);
                         }
                       });
  codes_ = codes_owned_;
  set_rerank_data(data);
}

std::unique_ptr<SqIndex> SqIndex::from_snapshot(
    const store::MappedSnapshot& snap, SqConfig config) {
  const QuantMeta meta = decode_quant_meta(snap.section("qmet"));
  if (meta.kind != kQuantKindSq8) {
    bad_sections("qmet does not describe an sq8 index");
  }
  auto out = std::make_unique<SqIndex>(BuildTag{});
  out->rows_ = snap.rows();
  out->dims_ = snap.dimensions();
  out->metric_ = meta.metric;
  out->rerank_.store(config.rerank, std::memory_order_relaxed);
  if (out->rows_ == 0) throw std::invalid_argument("sq8: empty snapshot");

  const auto params = snap.section("sq8p");
  if (params.size() != 2 * out->dims_ * sizeof(float)) {
    bad_sections("sq8p size does not match dims");
  }
  out->quant_.dims = out->dims_;
  out->quant_.vmin.resize(out->dims_);
  out->quant_.scale.resize(out->dims_);
  std::memcpy(out->quant_.vmin.data(), params.data(),
              out->dims_ * sizeof(float));
  std::memcpy(out->quant_.scale.data(),
              params.data() + out->dims_ * sizeof(float),
              out->dims_ * sizeof(float));

  const auto codes = snap.section("sq8c");
  if (codes.size() != out->rows_ * out->dims_) {
    bad_sections("sq8c size does not match rows x dims");
  }
  out->codes_ = codes;  // zero-copy: served straight from the mapping

  if (snap.has_floats()) out->set_rerank_data(snap.float_view());
  return out;
}

void SqIndex::save_sections(store::SnapshotBuilder& builder) const {
  QuantMeta meta;
  meta.kind = kQuantKindSq8;
  meta.metric = metric_;
  builder.add_section("qmet", encode_quant_meta(meta));

  std::vector<std::uint8_t> params(2 * dims_ * sizeof(float));
  std::memcpy(params.data(), quant_.vmin.data(), dims_ * sizeof(float));
  std::memcpy(params.data() + dims_ * sizeof(float), quant_.scale.data(),
              dims_ * sizeof(float));
  builder.add_section("sq8p", std::move(params));
  builder.add_section("sq8c", {codes_.begin(), codes_.end()});
}

void SqIndex::search_into(std::span<const float> query, std::size_t k,
                          std::vector<Neighbor>& out) const {
  out.clear();
  k = std::min(k, rows_);
  if (k == 0) return;
  const bool cosine = metric_ == DistanceMetric::kCosine;

  thread_local std::vector<float> qbuf;
  const float* q = query.data();
  if (cosine) {
    qbuf.assign(query.begin(), query.end());
    normalize(std::span<float>(qbuf));
    q = qbuf.data();
  }

  thread_local std::vector<Neighbor> scored;
  scored.clear();
  scored.reserve(rows_);
  const float* vmin = quant_.vmin.data();
  const float* scale = quant_.scale.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::uint8_t* code = codes_.data() + r * dims_;
    const double dist =
        cosine ? 1.0 - static_cast<double>(
                           kernels::sq8_dot(q, code, vmin, scale, dims_))
               : static_cast<double>(
                     kernels::sq8_sqdist(q, code, vmin, scale, dims_));
    scored.push_back({static_cast<std::uint32_t>(r), dist});
  }

  const std::size_t r_depth = rerank_.load(std::memory_order_relaxed);
  const bool do_rerank = r_depth > 0 && has_floats_;
  const std::size_t keep =
      std::min(do_rerank ? std::max(k, r_depth) : k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(keep),
                    scored.end(), neighbor_less);
  scored.resize(keep);
  if (do_rerank) {
    exact_rerank(floats_, metric_, query, scored, k);
  }
  k = std::min(k, scored.size());
  out.assign(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k));
}

double SqIndex::warm_rows(std::size_t begin, std::size_t end) const {
  double sum = 0.0;
  end = std::min(end, rows_);
  for (std::size_t r = begin; r < end; ++r) {
    const std::uint8_t* code = codes_.data() + r * dims_;
    std::uint64_t acc = 0;
    for (std::size_t j = 0; j < dims_; ++j) acc += code[j];
    sum += static_cast<double>(acc);
  }
  return sum;
}

double SqIndex::bytes_per_vector() const noexcept {
  const double fixed =
      static_cast<double>(2 * dims_ * sizeof(float));  // vmin + scale
  return static_cast<double>(dims_) + fixed / static_cast<double>(rows_);
}

}  // namespace v2v::index
