// Concurrent batch query front-end over any VectorIndex.
//
// A QueryEngine owns the serving policy — single queries run inline on the
// caller's thread; batches fan out over an internal thread pool when
// `threads > 1` — and the serving telemetry: every query bumps the
// `query.queries` counter and records wall latency into the
// `query.latency_us` histogram (p50/p99 readable from the snapshot), and
// `observe_recall` publishes a recall-vs-oracle gauge when ground truth
// from a FlatIndex is supplied.
//
// Batch semantics (what serve/'s batching admission queue builds on):
//   - Each row of a batch is searched independently — query_batch(Q, k)[i]
//     is identical, distances bit for bit, to query(Q.row(i), k). Batching
//     buys scheduling efficiency, never changes results.
//   - Results are positionally ordered: out[i] answers row i regardless of
//     which pool worker ran it, so batch output is deterministic across
//     thread counts and schedules.
//   - Each result list is the exact top-k under (distance, id) ascending;
//     because that order does not depend on k, the first k' entries of a
//     top-k list ARE the top-k' answer (k' <= k). Callers may therefore
//     over-ask and truncate (serve::BatchQueue batches at the largest
//     per-request k this way).
//   - A batch call blocks until every row is answered; there is no
//     per-row cancellation. Deadline policy lives a layer up, in
//     serve::BatchQueue.
//
// Thread-safety: all query methods are const and safe to call
// concurrently (VectorIndex::search_into is required to be), including
// concurrently with warmup(). Distinct batches submitted concurrently
// share the one internal pool; their rows interleave freely without
// affecting either batch's results or ordering.
//
// The engine itself is lock-free by construction — no mutex, no mutable
// state beyond a relaxed atomic sink (common/relaxed.hpp idiom); all of
// its locking lives inside the capability-annotated ThreadPool
// (common/sync.hpp), whose analysis and lockdep ranks it inherits. Keep
// it that way: any new shared mutable state belongs behind a v2v::Mutex
// with a rank from v2v::lock_rank.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "v2v/common/matrix.hpp"
#include "v2v/common/thread_pool.hpp"
#include "v2v/index/vector_index.hpp"

namespace v2v::obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace v2v::obs

namespace v2v::index {

struct QueryEngineConfig {
  /// Worker threads for batch queries; <= 1 runs batches inline (no pool
  /// is created, so a default engine is cheap).
  std::size_t threads = 1;
  /// Optional observability sink for the serving metrics above.
  obs::MetricsRegistry* metrics = nullptr;
};

class QueryEngine {
 public:
  /// The index must outlive the engine.
  explicit QueryEngine(const VectorIndex& index, QueryEngineConfig config = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  [[nodiscard]] const VectorIndex& index() const noexcept { return index_; }
  [[nodiscard]] std::size_t threads() const noexcept;

  /// Top-k for one query, inline on the calling thread.
  [[nodiscard]] std::vector<Neighbor> query(std::span<const float> q,
                                            std::size_t k) const;
  void query_into(std::span<const float> q, std::size_t k,
                  std::vector<Neighbor>& out) const;

  /// Top-k for every row of `queries`, fanned out over the pool.
  [[nodiscard]] std::vector<std::vector<Neighbor>> query_batch(
      const MatrixF& queries, std::size_t k) const;
  /// Same over selected rows of a larger matrix (crossval's access shape).
  [[nodiscard]] std::vector<std::vector<Neighbor>> query_rows(
      const MatrixF& points, std::span<const std::size_t> rows,
      std::size_t k) const;

  /// Streams every indexed row once (touches all pages — prefaults an
  /// mmapped snapshot and pulls the codes into cache). Safe concurrently
  /// with queries; records query.warmup_seconds when metrics are wired.
  void warmup() const;

  /// Mean recall@k of `results` against exact `truth` (per-query id-set
  /// overlap / truth size); publishes the query.recall_at_k gauge when
  /// metrics are wired. The two outer vectors must be the same length.
  double observe_recall(const std::vector<std::vector<Neighbor>>& truth,
                        const std::vector<std::vector<Neighbor>>& results) const;

 private:
  template <typename RowAt>
  std::vector<std::vector<Neighbor>> run_batch(std::size_t count, std::size_t k,
                                               const RowAt& row_at) const;

  const VectorIndex& index_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* queries_ = nullptr;        ///< cached; may stay null
  obs::Histogram* latency_us_ = nullptr;   ///< cached; may stay null
  std::unique_ptr<ThreadPool> pool_;       ///< null when threads <= 1
  mutable std::atomic<double> warmup_sink_{0.0};  ///< defeats dead-code elim
};

}  // namespace v2v::index
