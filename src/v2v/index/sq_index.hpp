// SQ8 scalar-quantized exact-scan index: every row stored as one byte per
// dimension (4x smaller than float32), scanned with the asymmetric int8
// kernels (the query stays float; rows decode on the fly inside
// kernels::sq8_dot / sq8_sqdist, so no decoded copy ever materializes).
//
// Cosine metric: rows and queries are L2-normalized once, cosine distance
// is 1 - sq8_dot. Distances are approximate (quantization error); the
// optional exact-rerank stage re-scores the top-R candidates against the
// float matrix with FlatIndex's formulas when one is attached, recovering
// oracle-grade ordering at R/rows of the float bandwidth.
//
// The quantizer params + codes round-trip through snapshot v2 sections
// ("qmet"/"sq8p"/"sq8c"), so a server can mmap a quantized snapshot and
// serve it with no float matrix in RAM.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "v2v/index/quantizer.hpp"
#include "v2v/index/vector_index.hpp"
#include "v2v/store/embedding_view.hpp"

namespace v2v::store {
class SnapshotBuilder;
class MappedSnapshot;
}  // namespace v2v::store

namespace v2v::index {

struct SqConfig {
  /// Worker threads for the build (min/max fit + encode pass).
  std::size_t threads = 1;
  /// Exact-rerank depth: re-score the top-R quantized candidates against
  /// the float matrix (requires rerank data). 0 disables.
  std::size_t rerank = 0;
};

class SqIndex final : public VectorIndex {
  struct BuildTag {};  ///< passkey: only from_snapshot can mint one

 public:
  /// Passkey constructor backing from_snapshot's make_unique; not
  /// callable outside this class (BuildTag is private).
  explicit SqIndex(BuildTag) noexcept {}

  /// Quantizes `data` (backing storage must outlive the index only for
  /// rerank; codes are owned). Throws std::invalid_argument when empty.
  SqIndex(store::EmbeddingView data, DistanceMetric metric, SqConfig config = {});

  /// Reconstructs from a quantized snapshot's "qmet"/"sq8p"/"sq8c"
  /// sections. Codes are served straight from the mapping — `snap` must
  /// outlive the index. Attaches the float matrix for rerank when the
  /// snapshot carries one.
  [[nodiscard]] static std::unique_ptr<SqIndex> from_snapshot(
      const store::MappedSnapshot& snap, SqConfig config = {});

  /// Adds "qmet"/"sq8p"/"sq8c" to a v2 snapshot builder.
  void save_sections(store::SnapshotBuilder& builder) const;

  [[nodiscard]] std::size_t size() const noexcept override { return rows_; }
  [[nodiscard]] std::size_t dimensions() const noexcept override { return dims_; }
  [[nodiscard]] DistanceMetric metric() const noexcept override { return metric_; }

  void search_into(std::span<const float> query, std::size_t k,
                   std::vector<Neighbor>& out) const override;
  double warm_rows(std::size_t begin, std::size_t end) const override;

  /// Attaches float rows (same order as build input) for exact rerank.
  void set_rerank_data(store::EmbeddingView floats) noexcept {
    floats_ = floats;
    has_floats_ = true;
  }
  /// Runtime-tunable like IvfIndex::set_nprobe; 0 disables rerank.
  void set_rerank(std::size_t r) noexcept {
    rerank_.store(r, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t rerank() const noexcept {
    return rerank_.load(std::memory_order_relaxed);
  }

  /// Quantized footprint per vector (codes + amortized quantizer params).
  [[nodiscard]] double bytes_per_vector() const noexcept;
  [[nodiscard]] std::span<const std::uint8_t> packed_codes() const noexcept {
    return codes_;
  }
  [[nodiscard]] const Sq8Quantizer& quantizer() const noexcept { return quant_; }

 private:
  std::size_t rows_ = 0;
  std::size_t dims_ = 0;
  DistanceMetric metric_ = DistanceMetric::kCosine;
  std::atomic<std::size_t> rerank_{0};
  Sq8Quantizer quant_;
  std::vector<std::uint8_t> codes_owned_;     ///< empty when snapshot-backed
  std::span<const std::uint8_t> codes_;       ///< rows x dims bytes
  store::EmbeddingView floats_;               ///< rerank source (optional)
  bool has_floats_ = false;
};

}  // namespace v2v::index
