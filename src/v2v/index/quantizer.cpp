#include "v2v/index/quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "v2v/common/check.hpp"
#include "v2v/common/kernels.hpp"
#include "v2v/common/thread_pool.hpp"
#include "v2v/store/snapshot.hpp"

namespace v2v::index {

Sq8Quantizer Sq8Quantizer::train(const MatrixF& rows) {
  V2V_CHECK(rows.rows() > 0, "sq8: empty training matrix");
  Sq8Quantizer q;
  q.dims = rows.cols();
  q.vmin.assign(q.dims, 0.0f);
  AlignedVector<float> vmax(q.dims, 0.0f);
  const auto first = rows.row(0);
  std::copy(first.begin(), first.end(), q.vmin.begin());
  std::copy(first.begin(), first.end(), vmax.begin());
  for (std::size_t r = 1; r < rows.rows(); ++r) {
    const auto row = rows.row(r);
    for (std::size_t j = 0; j < q.dims; ++j) {
      q.vmin[j] = std::min(q.vmin[j], row[j]);
      vmax[j] = std::max(vmax[j], row[j]);
    }
  }
  q.scale.assign(q.dims, 0.0f);
  for (std::size_t j = 0; j < q.dims; ++j) {
    q.scale[j] = (vmax[j] - q.vmin[j]) / 255.0f;
  }
  return q;
}

void Sq8Quantizer::encode_row(std::span<const float> row,
                              std::uint8_t* out) const noexcept {
  for (std::size_t j = 0; j < dims; ++j) {
    if (scale[j] <= 0.0f) {
      out[j] = 0;
      continue;
    }
    const float t = (row[j] - vmin[j]) / scale[j];
    const long code = std::lround(t);
    out[j] = static_cast<std::uint8_t>(std::clamp<long>(code, 0, 255));
  }
}

PqCodebooks pq_train(const MatrixF& train, const PqTrainConfig& config) {
  V2V_CHECK(train.rows() > 0, "pq: empty training matrix");
  PqCodebooks pq;
  pq.dims = train.cols();
  pq.m = std::clamp<std::size_t>(config.m, 1, pq.dims);
  pq.ksub = std::min<std::size_t>(256, train.rows());

  // Unequal split: the first dims % m subspaces get one extra dimension.
  pq.sub_offset.assign(pq.m + 1, 0);
  const std::size_t base = pq.dims / pq.m;
  const std::size_t extra = pq.dims % pq.m;
  for (std::size_t s = 0; s < pq.m; ++s) {
    pq.sub_offset[s + 1] = pq.sub_offset[s] + base + (s < extra ? 1 : 0);
  }

  pq.books.assign(256 * pq.dims, 0.0f);
  for (std::size_t s = 0; s < pq.m; ++s) {
    const std::size_t d = pq.sub_dim(s);
    MatrixF sub(train.rows(), d);
    for (std::size_t r = 0; r < train.rows(); ++r) {
      const auto src = train.row(r);
      const auto dst = sub.row(r);
      std::copy(src.begin() + static_cast<std::ptrdiff_t>(pq.sub_offset[s]),
                src.begin() + static_cast<std::ptrdiff_t>(pq.sub_offset[s + 1]),
                dst.begin());
    }
    ml::KMeansConfig kc;
    kc.k = pq.ksub;
    kc.max_iterations = std::max<std::size_t>(1, config.kmeans_iterations);
    kc.restarts = std::max<std::size_t>(1, config.kmeans_restarts);
    kc.seed = config.seed + s;  // distinct deterministic stream per subspace
    kc.threads = std::max<std::size_t>(1, config.threads);
    kc.assign = config.assign;
    const ml::KMeansResult trained = ml::kmeans(sub, kc);
    for (std::size_t c = 0; c < pq.ksub; ++c) {
      const auto src = trained.centroids.row(c);
      float* dst = pq.books.data() + pq.book_offset(s) + c * d;
      for (std::size_t j = 0; j < d; ++j) dst[j] = static_cast<float>(src[j]);
    }
  }
  return pq;
}

void pq_encode(const PqCodebooks& pq, const MatrixF& rows, std::size_t threads,
               ml::KMeansAssign assign, std::uint8_t* codes) {
  V2V_CHECK(rows.cols() == pq.dims, "pq_encode: dims mismatch");
  const std::size_t n = rows.rows();
  for (std::size_t s = 0; s < pq.m; ++s) {
    const std::size_t d = pq.sub_dim(s);
    MatrixF sub(n, d);
    parallel_for_dynamic(
        std::max<std::size_t>(1, threads), n, 0,
        [&](std::size_t, std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t r = begin; r < end; ++r) {
            const auto src = rows.row(r);
            const auto dst = sub.row(r);
            std::copy(
                src.begin() + static_cast<std::ptrdiff_t>(pq.sub_offset[s]),
                src.begin() + static_cast<std::ptrdiff_t>(pq.sub_offset[s + 1]),
                dst.begin());
          }
        });
    // The float books are the source of truth (they are what snapshots
    // carry); promote once so build-time and loaded-from-snapshot encodes
    // agree bit for bit.
    MatrixD codewords(pq.ksub, d);
    for (std::size_t c = 0; c < pq.ksub; ++c) {
      const float* src = pq.codeword(s, c);
      const auto dst = codewords.row(c);
      for (std::size_t j = 0; j < d; ++j) dst[j] = static_cast<double>(src[j]);
    }
    const std::vector<std::uint32_t> assignment =
        ml::assign_to_centroids(sub, codewords, std::max<std::size_t>(1, threads),
                                assign);
    for (std::size_t r = 0; r < n; ++r) {
      codes[r * pq.m + s] = static_cast<std::uint8_t>(assignment[r]);
    }
  }
}

void PqCodebooks::build_lut(const float* q, float* lut) const noexcept {
  for (std::size_t s = 0; s < m; ++s) {
    const std::size_t d = sub_dim(s);
    const float* qs = q + sub_offset[s];
    float* row = lut + s * kernels::kPqLutStride;
    for (std::size_t c = 0; c < kernels::kPqLutStride; ++c) {
      row[c] = kernels::sqdist(qs, codeword(s, c), d);
    }
  }
}

std::vector<std::uint8_t> encode_quant_meta(const QuantMeta& meta) {
  std::vector<std::uint8_t> out(40, 0);
  auto put = [&out](std::size_t at, const auto& v) {
    std::memcpy(out.data() + at, &v, sizeof(v));
  };
  put(0, meta.kind);
  const std::uint32_t metric = meta.metric == DistanceMetric::kEuclidean ? 1u : 0u;
  put(4, metric);
  put(8, meta.m);
  put(16, meta.ksub);
  put(24, meta.nlist);
  return out;
}

QuantMeta decode_quant_meta(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 40) {
    throw store::SnapshotError(store::SnapshotErrorCode::kBadHeader,
                               "snapshot: qmet section too short");
  }
  auto get = [&bytes](std::size_t at, auto& v) {
    std::memcpy(&v, bytes.data() + at, sizeof(v));
  };
  QuantMeta meta;
  std::uint32_t metric = 0;
  get(0, meta.kind);
  get(4, metric);
  get(8, meta.m);
  get(16, meta.ksub);
  get(24, meta.nlist);
  if ((meta.kind != kQuantKindSq8 && meta.kind != kQuantKindIvfPq) ||
      metric > 1) {
    throw store::SnapshotError(store::SnapshotErrorCode::kBadHeader,
                               "snapshot: unknown quantizer kind or metric");
  }
  meta.metric = metric == 1 ? DistanceMetric::kEuclidean
                            : DistanceMetric::kCosine;
  return meta;
}

void exact_rerank(const store::EmbeddingView& floats, DistanceMetric metric,
                  std::span<const float> query, std::vector<Neighbor>& cand,
                  std::size_t k) {
  const float* q = query.data();
  const std::size_t d = floats.dimensions();
  if (metric == DistanceMetric::kCosine) {
    // Same arithmetic as FlatIndex / vec_math cosine_distance, so reranked
    // distances are bit-identical to the exact oracle's.
    const double nq = std::sqrt(kernels::ddot(q, q, d));
    for (auto& c : cand) {
      const float* row = floats.row(c.id).data();
      const double nr = std::sqrt(kernels::ddot(row, row, d));
      c.distance = (nq == 0.0 || nr == 0.0)
                       ? 1.0
                       : 1.0 - kernels::ddot(q, row, d) / (nq * nr);
    }
  } else {
    for (auto& c : cand) {
      c.distance = kernels::sqdist(q, floats.row(c.id).data(), d);
    }
  }
  k = std::min(k, cand.size());
  std::partial_sort(cand.begin(), cand.begin() + static_cast<std::ptrdiff_t>(k),
                    cand.end(), neighbor_less);
  cand.resize(k);
}

}  // namespace v2v::index
