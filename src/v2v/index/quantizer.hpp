// Vector quantizers for the memory-bound serving path (ROADMAP: a
// million-user float32 corpus does not fit in RAM).
//
//   Sq8Quantizer  per-dimension min/max affine scalar quantization to one
//                 byte per dimension: code = round((x - vmin) / scale),
//                 decode = vmin + scale * code. 4x smaller than float32.
//   PqCodebooks   product quantization: the dims are split into m
//                 subspaces (the first dims % m subspaces get one extra
//                 dimension) and each subvector is replaced by the id of
//                 its nearest codeword among ksub <= 256 trained per
//                 subspace — m bytes per vector. Queries scan codes with
//                 the LUT-based asymmetric distance (ADC): a per-query
//                 m x 256 table of subspace sqdists, accumulated by
//                 kernels::pq_adc over the packed codes.
//
// Both quantizers train on the existing exact k-means engine (ml::kmeans
// + ml::assign_to_centroids) rather than reimplementing Lloyd; encoding
// inherits the engine's determinism contract, so codes are byte-identical
// across thread counts. Codebooks are stored as float32 — training's
// double centroids are rounded once — so an index rebuilt from snapshot
// sections encodes and scores exactly like the one that wrote them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "v2v/common/aligned.hpp"
#include "v2v/common/matrix.hpp"
#include "v2v/index/vector_index.hpp"
#include "v2v/ml/kmeans.hpp"
#include "v2v/store/embedding_view.hpp"

namespace v2v::index {

/// Per-dimension affine scalar quantizer (SQ8).
struct Sq8Quantizer {
  std::size_t dims = 0;
  AlignedVector<float> vmin;   ///< per-dimension minimum
  AlignedVector<float> scale;  ///< (max - min) / 255; 0 for constant dims

  /// Fits min/max per dimension over every row.
  [[nodiscard]] static Sq8Quantizer train(const MatrixF& rows);

  /// Encodes one row to dims bytes (values clamped into [vmin, vmin +
  /// 255 * scale]; constant dimensions encode as 0).
  void encode_row(std::span<const float> row, std::uint8_t* out) const noexcept;
};

struct PqTrainConfig {
  std::size_t m = 8;           ///< subspaces (clamped to [1, dims])
  std::size_t kmeans_iterations = 20;
  std::size_t kmeans_restarts = 1;
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  ml::KMeansAssign assign = ml::KMeansAssign::kHamerly;
};

/// Trained per-subspace codebooks. Each subspace stores a full 256-row
/// table (rows past ksub are zero), so the books buffer is always exactly
/// 256 * dims floats and the ADC LUT stride is kernels::kPqLutStride.
struct PqCodebooks {
  std::size_t dims = 0;
  std::size_t m = 0;
  std::size_t ksub = 0;                  ///< trained codewords per subspace
  std::vector<std::size_t> sub_offset;   ///< m + 1 dimension boundaries
  AlignedVector<float> books;            ///< subspace-major, 256 rows each

  [[nodiscard]] std::size_t sub_dim(std::size_t s) const noexcept {
    return sub_offset[s + 1] - sub_offset[s];
  }
  /// Float offset of subspace `s`'s 256-row table inside `books`.
  [[nodiscard]] std::size_t book_offset(std::size_t s) const noexcept {
    return 256 * sub_offset[s];
  }
  [[nodiscard]] const float* codeword(std::size_t s, std::size_t c) const noexcept {
    return books.data() + book_offset(s) + c * sub_dim(s);
  }

  /// Fills the per-query ADC table: lut[s * kPqLutStride + c] is the
  /// squared distance between `q`'s subvector s and codeword c. `lut`
  /// must hold m * kernels::kPqLutStride floats.
  void build_lut(const float* q, float* lut) const noexcept;
};

/// Trains per-subspace codebooks on the rows of `train` (typically
/// residuals against a coarse quantizer). ksub = min(256, train rows).
[[nodiscard]] PqCodebooks pq_train(const MatrixF& train,
                                   const PqTrainConfig& config);

/// Encodes every row of `rows` into `codes` (rows x m bytes, row-major).
/// Assignment runs on the exact k-means engine: byte-identical across
/// `threads` and to the naive nearest-codeword scan.
void pq_encode(const PqCodebooks& pq, const MatrixF& rows, std::size_t threads,
               ml::KMeansAssign assign, std::uint8_t* codes);

/// Fixed-layout "qmet" snapshot section: which quantizer a snapshot
/// carries and the shape needed to reconstruct it.
struct QuantMeta {
  std::uint32_t kind = 0;  ///< 1 = sq8, 2 = ivfpq
  DistanceMetric metric = DistanceMetric::kCosine;
  std::uint64_t m = 0;
  std::uint64_t ksub = 0;
  std::uint64_t nlist = 0;
};

inline constexpr std::uint32_t kQuantKindSq8 = 1;
inline constexpr std::uint32_t kQuantKindIvfPq = 2;

[[nodiscard]] std::vector<std::uint8_t> encode_quant_meta(const QuantMeta& meta);
/// Throws store::SnapshotError(kBadHeader) on malformed payloads.
[[nodiscard]] QuantMeta decode_quant_meta(std::span<const std::uint8_t> bytes);

/// Recomputes exact float distances (FlatIndex's formulas, same rounding)
/// for the candidate ids in `cand` against `floats`, then keeps the top-k
/// by (distance, id). The quantized-index rerank stage: `query` is the
/// caller's raw, unnormalized query.
void exact_rerank(const store::EmbeddingView& floats, DistanceMetric metric,
                  std::span<const float> query, std::vector<Neighbor>& cand,
                  std::size_t k);

}  // namespace v2v::index
