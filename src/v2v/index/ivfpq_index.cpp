#include "v2v/index/ivfpq_index.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "v2v/common/kernels.hpp"
#include "v2v/common/rng.hpp"
#include "v2v/common/thread_pool.hpp"
#include "v2v/common/vec_math.hpp"
#include "v2v/obs/metrics.hpp"
#include "v2v/store/snapshot.hpp"

namespace v2v::index {
namespace {

[[noreturn]] void bad_sections(const std::string& detail) {
  throw store::SnapshotError(store::SnapshotErrorCode::kBadHeader,
                             "snapshot: " + detail);
}

void copy_floats(std::span<const std::uint8_t> bytes, float* dst,
                 std::size_t count) {
  std::memcpy(dst, bytes.data(), count * sizeof(float));
}

}  // namespace

IvfPqIndex::IvfPqIndex(store::EmbeddingView data, DistanceMetric metric,
                       IvfPqConfig config)
    : rows_(data.rows()), dims_(data.dimensions()), metric_(metric),
      nprobe_(config.nprobe), rerank_(config.rerank) {
  if (rows_ == 0) throw std::invalid_argument("ivfpq: empty embedding");
  const obs::ScopedTimer span(config.metrics, "ivfpq_build");
  const bool cosine = metric_ == DistanceMetric::kCosine;
  const std::size_t threads = std::max<std::size_t>(1, config.threads);

  // Metric-normalized working copy (IvfIndex convention: cosine rows are
  // unit, zero rows stay zero).
  MatrixF normalized(rows_, dims_);
  parallel_for_dynamic(threads, rows_, 0,
                       [&](std::size_t, std::size_t, std::size_t begin,
                           std::size_t end) {
                         for (std::size_t r = begin; r < end; ++r) {
                           const auto src = data.row(r);
                           const auto dst = normalized.row(r);
                           std::copy(src.begin(), src.end(), dst.begin());
                           if (cosine) normalize(dst);
                         }
                       });

  // --- Coarse quantizer over a deterministic sample (as IvfIndex). ------
  std::size_t sample_count = rows_;
  std::vector<std::size_t> sample;  // empty = identity
  if (config.train_sample != 0 && config.train_sample < rows_) {
    Rng rng(config.seed ^ 0x1c0ffee5eedULL);
    sample = rng.sample_indices(rows_, config.train_sample);
    sample_count = sample.size();
  }
  std::size_t nlist = config.nlist;
  if (nlist == 0) {
    nlist = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(rows_))));
  }
  nlist = std::clamp<std::size_t>(nlist, 1, sample_count);

  MatrixF train(sample_count, dims_);
  for (std::size_t i = 0; i < sample_count; ++i) {
    const std::size_t src = sample.empty() ? i : sample[i];
    const auto row = normalized.row(src);
    std::copy(row.begin(), row.end(), train.row(i).begin());
  }

  ml::KMeansConfig kc;
  kc.k = nlist;
  kc.max_iterations = std::max<std::size_t>(1, config.kmeans_iterations);
  kc.restarts = std::max<std::size_t>(1, config.kmeans_restarts);
  kc.seed = config.seed;
  kc.threads = threads;
  kc.assign = config.kmeans_assign;
  kc.metrics = config.metrics;
  const ml::KMeansResult trained = ml::kmeans(train, kc);

  coarse_ = MatrixF(nlist, dims_);
  for (std::size_t c = 0; c < nlist; ++c) {
    const auto src = trained.centroids.row(c);
    const auto dst = coarse_.row(c);
    for (std::size_t j = 0; j < dims_; ++j) dst[j] = static_cast<float>(src[j]);
  }

  const std::vector<std::uint32_t> assignment = ml::assign_to_centroids(
      normalized, trained.centroids, threads, config.kmeans_assign);

  // --- Residuals against the float cell centers (what snapshots carry,
  // and what queries subtract — build/query geometry matches exactly).
  MatrixF residuals(rows_, dims_);
  parallel_for_dynamic(
      threads, rows_, 0,
      [&](std::size_t, std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const auto src = normalized.row(r);
          const auto dst = residuals.row(r);
          std::copy(src.begin(), src.end(), dst.begin());
          kernels::axpy(-1.0f, coarse_.row(assignment[r]).data(), dst.data(),
                        dims_);
        }
      });

  // --- PQ codebooks on sampled residuals, codes for every row. ----------
  MatrixF pq_sample(sample_count, dims_);
  for (std::size_t i = 0; i < sample_count; ++i) {
    const std::size_t src = sample.empty() ? i : sample[i];
    const auto row = residuals.row(src);
    std::copy(row.begin(), row.end(), pq_sample.row(i).begin());
  }
  PqTrainConfig pc;
  pc.m = config.m;
  pc.kmeans_iterations = std::max<std::size_t>(1, config.kmeans_iterations);
  pc.kmeans_restarts = std::max<std::size_t>(1, config.kmeans_restarts);
  pc.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  pc.threads = threads;
  pc.assign = config.kmeans_assign;
  pq_ = pq_train(pq_sample, pc);

  std::vector<std::uint8_t> row_codes(rows_ * pq_.m);
  pq_encode(pq_, residuals, threads, config.kmeans_assign, row_codes.data());

  // --- Repack codes into contiguous per-list postings (stable by id). ---
  list_offsets_.assign(nlist + 1, 0);
  for (const std::uint32_t a : assignment) ++list_offsets_[a + 1];
  for (std::size_t c = 0; c < nlist; ++c) {
    list_offsets_[c + 1] += list_offsets_[c];
  }
  codes_owned_.resize(rows_ * pq_.m);
  ids_owned_.resize(rows_);
  std::vector<std::size_t> cursor(list_offsets_.begin(),
                                  list_offsets_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t slot = cursor[assignment[r]]++;
    ids_owned_[slot] = static_cast<std::uint32_t>(r);
    std::memcpy(codes_owned_.data() + slot * pq_.m,
                row_codes.data() + r * pq_.m, pq_.m);
  }
  codes_ = codes_owned_;
  ids_ = ids_owned_;
  set_rerank_data(data);

  if (config.metrics != nullptr) {
    config.metrics->gauge("ivfpq.nlist").set(static_cast<double>(nlist));
    config.metrics->gauge("ivfpq.m").set(static_cast<double>(pq_.m));
    config.metrics->gauge("ivfpq.build_threads").set(
        static_cast<double>(threads));
    config.metrics->counter("ivfpq.rows").add(rows_);
    config.metrics->gauge("ivfpq.build_seconds").set(span.seconds());
  }
}

std::unique_ptr<IvfPqIndex> IvfPqIndex::from_snapshot(
    const store::MappedSnapshot& snap, IvfPqConfig config) {
  const QuantMeta meta = decode_quant_meta(snap.section("qmet"));
  if (meta.kind != kQuantKindIvfPq) {
    bad_sections("qmet does not describe an ivfpq index");
  }
  auto out = std::make_unique<IvfPqIndex>(BuildTag{});
  out->rows_ = snap.rows();
  out->dims_ = snap.dimensions();
  out->metric_ = meta.metric;
  out->nprobe_.store(config.nprobe, std::memory_order_relaxed);
  out->rerank_.store(config.rerank, std::memory_order_relaxed);
  if (out->rows_ == 0) throw std::invalid_argument("ivfpq: empty snapshot");

  const auto m = static_cast<std::size_t>(meta.m);
  const auto ksub = static_cast<std::size_t>(meta.ksub);
  const auto nlist = static_cast<std::size_t>(meta.nlist);
  if (m == 0 || m > out->dims_ || ksub == 0 || ksub > 256 || nlist == 0) {
    bad_sections("qmet shape out of range");
  }

  out->pq_.dims = out->dims_;
  out->pq_.m = m;
  out->pq_.ksub = ksub;
  out->pq_.sub_offset.assign(m + 1, 0);
  const std::size_t base = out->dims_ / m;
  const std::size_t extra = out->dims_ % m;
  for (std::size_t s = 0; s < m; ++s) {
    out->pq_.sub_offset[s + 1] = out->pq_.sub_offset[s] + base +
                                 (s < extra ? 1 : 0);
  }

  const auto books = snap.section("pqbk");
  if (books.size() != 256 * out->dims_ * sizeof(float)) {
    bad_sections("pqbk size does not match 256 x dims");
  }
  out->pq_.books.resize(256 * out->dims_);
  copy_floats(books, out->pq_.books.data(), out->pq_.books.size());

  const auto coarse = snap.section("pqcc");
  if (coarse.size() != nlist * out->dims_ * sizeof(float)) {
    bad_sections("pqcc size does not match nlist x dims");
  }
  out->coarse_ = MatrixF(nlist, out->dims_);
  for (std::size_t c = 0; c < nlist; ++c) {
    copy_floats(coarse.subspan(c * out->dims_ * sizeof(float),
                               out->dims_ * sizeof(float)),
                out->coarse_.row(c).data(), out->dims_);
  }

  const auto codes = snap.section("pqcd");
  if (codes.size() != out->rows_ * m) {
    bad_sections("pqcd size does not match rows x m");
  }
  out->codes_ = codes;  // zero-copy from the mapping

  const auto ids = snap.section("pqid");
  if (ids.size() != out->rows_ * sizeof(std::uint32_t)) {
    bad_sections("pqid size does not match rows");
  }
  out->ids_ = {reinterpret_cast<const std::uint32_t*>(ids.data()), out->rows_};

  const auto lists = snap.section("pqls");
  if (lists.size() != (nlist + 1) * sizeof(std::uint64_t)) {
    bad_sections("pqls size does not match nlist + 1");
  }
  out->list_offsets_.resize(nlist + 1);
  for (std::size_t c = 0; c <= nlist; ++c) {
    std::uint64_t v = 0;
    std::memcpy(&v, lists.data() + c * sizeof(std::uint64_t), sizeof(v));
    out->list_offsets_[c] = static_cast<std::size_t>(v);
  }
  if (out->list_offsets_.front() != 0 ||
      out->list_offsets_.back() != out->rows_ ||
      !std::is_sorted(out->list_offsets_.begin(), out->list_offsets_.end())) {
    bad_sections("pqls offsets inconsistent");
  }

  if (snap.has_floats()) out->set_rerank_data(snap.float_view());
  return out;
}

void IvfPqIndex::save_sections(store::SnapshotBuilder& builder) const {
  QuantMeta meta;
  meta.kind = kQuantKindIvfPq;
  meta.metric = metric_;
  meta.m = pq_.m;
  meta.ksub = pq_.ksub;
  meta.nlist = nlist();
  builder.add_section("qmet", encode_quant_meta(meta));

  std::vector<std::uint8_t> books(pq_.books.size() * sizeof(float));
  std::memcpy(books.data(), pq_.books.data(), books.size());
  builder.add_section("pqbk", std::move(books));

  std::vector<std::uint8_t> coarse(nlist() * dims_ * sizeof(float));
  for (std::size_t c = 0; c < nlist(); ++c) {
    std::memcpy(coarse.data() + c * dims_ * sizeof(float),
                coarse_.row(c).data(), dims_ * sizeof(float));
  }
  builder.add_section("pqcc", std::move(coarse));

  builder.add_section("pqcd", {codes_.begin(), codes_.end()});

  std::vector<std::uint8_t> ids(ids_.size() * sizeof(std::uint32_t));
  std::memcpy(ids.data(), ids_.data(), ids.size());
  builder.add_section("pqid", std::move(ids));

  std::vector<std::uint8_t> lists(list_offsets_.size() *
                                  sizeof(std::uint64_t));
  for (std::size_t c = 0; c < list_offsets_.size(); ++c) {
    const auto v = static_cast<std::uint64_t>(list_offsets_[c]);
    std::memcpy(lists.data() + c * sizeof(std::uint64_t), &v, sizeof(v));
  }
  builder.add_section("pqls", std::move(lists));
}

void IvfPqIndex::search_into(std::span<const float> query, std::size_t k,
                             std::vector<Neighbor>& out) const {
  out.clear();
  k = std::min(k, rows_);
  if (k == 0) return;
  const std::size_t lists = nlist();
  const bool cosine = metric_ == DistanceMetric::kCosine;

  thread_local std::vector<float> qbuf;
  const float* q = query.data();
  if (cosine) {
    qbuf.assign(query.begin(), query.end());
    normalize(std::span<float>(qbuf));
    q = qbuf.data();
  }

  // Rank the coarse cells; probe the nprobe nearest.
  thread_local std::vector<Neighbor> ranked;
  ranked.clear();
  ranked.reserve(lists);
  for (std::size_t c = 0; c < lists; ++c) {
    ranked.push_back({static_cast<std::uint32_t>(c),
                      kernels::sqdist(q, coarse_.row(c).data(), dims_)});
  }
  const std::size_t probes = std::min(
      std::max<std::size_t>(1, nprobe_.load(std::memory_order_relaxed)),
      lists);
  std::partial_sort(ranked.begin(),
                    ranked.begin() + static_cast<std::ptrdiff_t>(probes),
                    ranked.end(), neighbor_less);

  thread_local std::vector<float> resq;
  thread_local std::vector<float> lut;
  thread_local std::vector<Neighbor> scored;
  resq.resize(dims_);
  lut.resize(pq_.m * kernels::kPqLutStride);
  scored.clear();

  for (std::size_t p = 0; p < probes; ++p) {
    const std::size_t list = ranked[p].id;
    // Query residual against this cell, then its ADC table.
    std::copy(q, q + dims_, resq.begin());
    kernels::axpy(-1.0f, coarse_.row(list).data(), resq.data(), dims_);
    pq_.build_lut(resq.data(), lut.data());
    for (std::size_t slot = list_offsets_[list];
         slot < list_offsets_[list + 1]; ++slot) {
      const std::uint8_t* code = codes_.data() + slot * pq_.m;
      const double adc =
          static_cast<double>(kernels::pq_adc(lut.data(), code, pq_.m));
      // Unit-sphere rows: ||q - x||^2 = 2 (1 - cos), so halving the ADC
      // estimate lands on the cosine-distance scale.
      scored.push_back({ids_[slot], cosine ? 0.5 * adc : adc});
    }
  }

  const std::size_t r_depth = rerank_.load(std::memory_order_relaxed);
  const bool do_rerank = r_depth > 0 && has_floats_;
  const std::size_t keep =
      std::min(do_rerank ? std::max(k, r_depth) : k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(keep),
                    scored.end(), neighbor_less);
  scored.resize(keep);
  if (do_rerank) {
    exact_rerank(floats_, metric_, query, scored, k);
  }
  k = std::min(k, scored.size());
  out.assign(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k));
}

double IvfPqIndex::warm_rows(std::size_t begin, std::size_t end) const {
  double sum = 0.0;
  end = std::min(end, rows_);
  for (std::size_t slot = begin; slot < end; ++slot) {
    const std::uint8_t* code = codes_.data() + slot * pq_.m;
    std::uint64_t acc = 0;
    for (std::size_t j = 0; j < pq_.m; ++j) acc += code[j];
    sum += static_cast<double>(acc) + static_cast<double>(ids_[slot]);
  }
  return sum;
}

double IvfPqIndex::bytes_per_vector() const noexcept {
  const double per_vector =
      static_cast<double>(pq_.m) + static_cast<double>(sizeof(std::uint32_t));
  const double fixed =
      static_cast<double>(pq_.books.size() * sizeof(float)) +
      static_cast<double>(nlist() * dims_ * sizeof(float)) +
      static_cast<double>(list_offsets_.size() * sizeof(std::uint64_t));
  return per_vector + fixed / static_cast<double>(rows_);
}

}  // namespace v2v::index
