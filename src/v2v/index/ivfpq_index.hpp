// IVF-PQ: the inverted-file layout of IvfIndex with product-quantized
// residuals instead of float rows — m bytes per vector instead of
// 4 * dims, the memory-bound serving configuration.
//
// Build: coarse k-means exactly like IvfIndex (sampled training, exact
// engine assignment), then every row's residual against its coarse cell
// (row - coarse_row) is product-quantized: per-subspace codebooks trained
// on sampled residuals, codes assigned by the same exact engine, packed
// into posting lists grouped by cell. Both passes run under
// parallel_for_dynamic's fixed-grain contract, so codes are byte-identical
// across thread counts.
//
// Query: rank coarse cells by squared distance, and for each of the
// `nprobe` nearest build the ADC lookup table over the query residual
// (q - coarse_row): lut[s][c] = sqdist of subvector s against codeword c.
// Scanning a list is then kernels::pq_adc per code — m table gathers, no
// float row traffic. ||q - x||^2 = ||(q - c) - (x - c)||^2, so the ADC sum
// approximates the true squared distance; for cosine (unit rows) distance
// is adc / 2, which matches 1 - cos up to quantization error.
//
// The optional exact-rerank stage re-scores the top-R candidates against
// the float matrix (when attached) with FlatIndex's formulas — the
// memory-for-recall knob the ISSUE's serving scenario needs. Everything
// round-trips through snapshot v2 sections ("qmet"/"pqbk"/"pqcc"/"pqcd"/
// "pqid"/"pqls"), served straight from the mapping.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "v2v/common/matrix.hpp"
#include "v2v/index/quantizer.hpp"
#include "v2v/index/vector_index.hpp"
#include "v2v/ml/kmeans.hpp"
#include "v2v/store/embedding_view.hpp"

namespace v2v::obs {
class MetricsRegistry;
}  // namespace v2v::obs

namespace v2v::store {
class SnapshotBuilder;
class MappedSnapshot;
}  // namespace v2v::store

namespace v2v::index {

struct IvfPqConfig {
  /// Posting lists (coarse cells); 0 picks ~sqrt(rows).
  std::size_t nlist = 0;
  /// Lists scanned per query; clamped to nlist.
  std::size_t nprobe = 8;
  /// PQ subspaces (bytes per vector); clamped to [1, dims].
  std::size_t m = 8;
  /// Exact-rerank depth over the float matrix; 0 disables.
  std::size_t rerank = 0;
  /// Rows sampled for coarse + PQ training; 0 or >= rows uses everything.
  std::size_t train_sample = 20000;
  std::size_t kmeans_iterations = 15;
  std::size_t kmeans_restarts = 1;
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  ml::KMeansAssign kmeans_assign = ml::KMeansAssign::kHamerly;
  /// Optional observability sink (ivfpq.* gauges + "ivfpq_build" span).
  obs::MetricsRegistry* metrics = nullptr;
};

class IvfPqIndex final : public VectorIndex {
  struct BuildTag {};  ///< passkey: only from_snapshot can mint one

 public:
  /// Passkey constructor backing from_snapshot's make_unique; not
  /// callable outside this class (BuildTag is private).
  explicit IvfPqIndex(BuildTag) noexcept {}

  /// Builds over `data`; codes/books are owned, the view is kept only for
  /// rerank. Throws std::invalid_argument when `data` is empty.
  IvfPqIndex(store::EmbeddingView data, DistanceMetric metric,
             IvfPqConfig config = {});

  /// Reconstructs from a quantized snapshot. Packed codes and ids are
  /// served straight from the mapping — `snap` must outlive the index.
  /// Attaches the float matrix for rerank when the snapshot carries one.
  [[nodiscard]] static std::unique_ptr<IvfPqIndex> from_snapshot(
      const store::MappedSnapshot& snap, IvfPqConfig config = {});

  /// Adds "qmet"/"pqbk"/"pqcc"/"pqcd"/"pqid"/"pqls" to a builder.
  void save_sections(store::SnapshotBuilder& builder) const;

  [[nodiscard]] std::size_t size() const noexcept override { return rows_; }
  [[nodiscard]] std::size_t dimensions() const noexcept override { return dims_; }
  [[nodiscard]] DistanceMetric metric() const noexcept override { return metric_; }

  void search_into(std::span<const float> query, std::size_t k,
                   std::vector<Neighbor>& out) const override;
  double warm_rows(std::size_t begin, std::size_t end) const override;

  [[nodiscard]] std::size_t nlist() const noexcept {
    return list_offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t list_size(std::size_t list) const noexcept {
    return list_offsets_[list + 1] - list_offsets_[list];
  }
  void set_nprobe(std::size_t nprobe) noexcept {
    nprobe_.store(nprobe, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t nprobe() const noexcept {
    return nprobe_.load(std::memory_order_relaxed);
  }
  void set_rerank_data(store::EmbeddingView floats) noexcept {
    floats_ = floats;
    has_floats_ = true;
  }
  void set_rerank(std::size_t r) noexcept {
    rerank_.store(r, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t rerank() const noexcept {
    return rerank_.load(std::memory_order_relaxed);
  }

  /// Quantized footprint per vector: m code bytes + id + amortized
  /// books/coarse/list-offset overhead.
  [[nodiscard]] double bytes_per_vector() const noexcept;
  [[nodiscard]] std::size_t subspaces() const noexcept { return pq_.m; }
  [[nodiscard]] std::span<const std::uint8_t> packed_codes() const noexcept {
    return codes_;
  }
  [[nodiscard]] std::span<const std::uint32_t> ids() const noexcept {
    return ids_;
  }
  [[nodiscard]] std::span<const std::size_t> list_offsets() const noexcept {
    return list_offsets_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t dims_ = 0;
  DistanceMetric metric_ = DistanceMetric::kCosine;
  std::atomic<std::size_t> nprobe_{8};
  std::atomic<std::size_t> rerank_{0};
  MatrixF coarse_;  ///< nlist x dims cell centers (float, snapshot truth)
  PqCodebooks pq_;
  std::vector<std::uint8_t> codes_owned_;  ///< empty when snapshot-backed
  std::span<const std::uint8_t> codes_;    ///< rows x m, grouped by list
  std::vector<std::uint32_t> ids_owned_;
  std::span<const std::uint32_t> ids_;     ///< packed slot -> original id
  std::vector<std::size_t> list_offsets_;  ///< nlist + 1 prefix offsets
  store::EmbeddingView floats_;            ///< rerank source (optional)
  bool has_floats_ = false;
};

}  // namespace v2v::index
