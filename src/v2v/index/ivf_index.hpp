// Inverted-file (IVF) approximate nearest-neighbor index.
//
// Build: a coarse quantizer — k-means over a sample of the rows, reusing
// ml/kmeans — partitions the vectors into `nlist` posting lists; every row
// is assigned to its nearest centroid (parallel over rows) and the rows
// are repacked into one contiguous codes matrix grouped by list, so a
// probe streams cache-line-aligned memory instead of chasing ids.
//
// Query: find the `nprobe` nearest centroids (by squared distance in the
// same normalized space the quantizer was trained in), scan only their
// lists, return the top-k by (distance, id). nprobe is the recall/QPS
// knob: nprobe == nlist degenerates to an exact scan (recall 1.0 modulo
// distance-formula rounding), nprobe == 1 scans ~1/nlist of the data.
//
// Cosine metric: rows and queries are L2-normalized once (build/query
// time), so cosine distance reduces to 1 - dot and the quantizer's
// Euclidean geometry matches the metric (||a - b||² = 2·(1 - cos) on the
// unit sphere). Zero vectors stay zero and keep distance 1 to everything,
// consistent with vec_math. Distances from an IVF probe are therefore not
// bit-identical to FlatIndex's (different formula, same ordering up to
// rounding) — exactness lives in FlatIndex, IVF trades it for speed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "v2v/common/matrix.hpp"
#include "v2v/index/vector_index.hpp"
#include "v2v/ml/kmeans.hpp"
#include "v2v/store/embedding_view.hpp"

namespace v2v::obs {
class MetricsRegistry;
}  // namespace v2v::obs

namespace v2v::index {

struct IvfConfig {
  /// Posting lists (coarse centroids); 0 picks ~sqrt(rows).
  std::size_t nlist = 0;
  /// Lists scanned per query; clamped to nlist. The recall/QPS knob.
  std::size_t nprobe = 8;
  /// Rows sampled for quantizer training (deterministic under `seed`);
  /// 0 or >= rows trains on everything.
  std::size_t train_sample = 20000;
  /// Lloyd iterations / restarts for the quantizer: a coarse quantizer
  /// does not need the paper's 100x100 budget.
  std::size_t kmeans_iterations = 15;
  std::size_t kmeans_restarts = 1;
  std::uint64_t seed = 1;
  /// Worker threads for the build (quantizer training + assignment pass).
  std::size_t threads = 1;
  /// Assignment engine for quantizer training and the row-assignment
  /// pass. kNaive is the slow oracle kept for CI speedup gates.
  ml::KMeansAssign kmeans_assign = ml::KMeansAssign::kHamerly;
  /// Optional observability sink: records ivf.nlist / ivf.build_seconds /
  /// ivf.build_threads gauges, an ivf.list_size histogram, and an
  /// "ivf_build" stage span.
  obs::MetricsRegistry* metrics = nullptr;
};

class IvfIndex final : public VectorIndex {
 public:
  /// Builds the index over `data` (backing storage must outlive it).
  /// Throws std::invalid_argument when `data` is empty.
  IvfIndex(store::EmbeddingView data, DistanceMetric metric, IvfConfig config = {});

  [[nodiscard]] std::size_t size() const noexcept override { return rows_; }
  [[nodiscard]] std::size_t dimensions() const noexcept override { return dims_; }
  [[nodiscard]] DistanceMetric metric() const noexcept override { return metric_; }

  void search_into(std::span<const float> query, std::size_t k,
                   std::vector<Neighbor>& out) const override;

  double warm_rows(std::size_t begin, std::size_t end) const override;

  [[nodiscard]] std::size_t nlist() const noexcept { return list_offsets_.size() - 1; }
  [[nodiscard]] std::size_t list_size(std::size_t list) const noexcept {
    return list_offsets_[list + 1] - list_offsets_[list];
  }
  /// Runtime-tunable; safe to change between (not during) queries from the
  /// controlling thread — concurrent readers just see old or new value.
  void set_nprobe(std::size_t nprobe) noexcept {
    nprobe_.store(nprobe, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t nprobe() const noexcept {
    return nprobe_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t dims_ = 0;
  DistanceMetric metric_;
  std::atomic<std::size_t> nprobe_;
  MatrixF centroids_;                       ///< nlist x dims quantizer
  MatrixF codes_;                           ///< rows x dims, grouped by list
  std::vector<std::uint32_t> ids_;          ///< codes_ row -> original id
  std::vector<std::size_t> list_offsets_;   ///< nlist + 1 prefix offsets
};

}  // namespace v2v::index
