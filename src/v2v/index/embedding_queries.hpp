// word2vec-style similarity queries over a trained embedding (paper §IV),
// served through the index layer. These free functions replace the old
// Embedding::nearest / Embedding::analogy methods: the embed module stores
// vectors, the index module searches them. The convenience overloads
// build a transient FlatIndex per call (same O(n) cost as the old brute
// scan, same results); callers with query traffic should build a
// FlatIndex / IvfIndex once and use `nearest` with an explicit index.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "v2v/embed/embedding.hpp"
#include "v2v/index/vector_index.hpp"

namespace v2v::index {

/// Ids of the k vectors nearest to `query` under `idx`'s metric, excluding
/// any id listed in `exclude`, nearest first.
[[nodiscard]] std::vector<std::uint32_t> nearest(
    const VectorIndex& idx, std::span<const float> query, std::size_t k,
    std::span<const std::uint32_t> exclude = {});

/// The k vertices most cosine-similar to vertex `v`, excluding `v` itself.
[[nodiscard]] std::vector<std::uint32_t> nearest(const embed::Embedding& embedding,
                                                 std::size_t v, std::size_t k);

/// word2vec analogy "a is to b as c is to ?": the k vertices whose vectors
/// are closest (cosine) to vec(b) - vec(a) + vec(c), excluding a, b and c.
[[nodiscard]] std::vector<std::uint32_t> analogy(const embed::Embedding& embedding,
                                                 std::size_t a, std::size_t b,
                                                 std::size_t c, std::size_t k);

}  // namespace v2v::index
