#include "v2v/index/knn.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace v2v::index {
namespace {

MatrixF copy_rows(const MatrixF& points, std::span<const std::size_t> rows) {
  MatrixF out(rows.size(), points.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto src = points.row(rows[i]);
    const auto dst = out.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

std::vector<std::uint32_t> gather_labels(std::span<const std::size_t> rows,
                                         std::span<const std::uint32_t> labels) {
  std::vector<std::uint32_t> out;
  out.reserve(rows.size());
  for (const std::size_t r : rows) out.push_back(labels[r]);
  return out;
}

}  // namespace

KnnClassifier::KnnClassifier(const MatrixF& points, std::vector<std::uint32_t> labels,
                             DistanceMetric metric, std::size_t threads)
    : points_(points), labels_(std::move(labels)),
      flat_(store::EmbeddingView::of(points_), metric),
      engine_(flat_, {.threads = threads, .metrics = nullptr}) {
  if (points_.rows() != labels_.size()) {
    throw std::invalid_argument("knn: points/labels size mismatch");
  }
  if (points_.rows() == 0) throw std::invalid_argument("knn: empty training set");
}

KnnClassifier::KnnClassifier(const MatrixF& points, std::span<const std::size_t> rows,
                             std::span<const std::uint32_t> labels,
                             DistanceMetric metric, std::size_t threads)
    : points_(copy_rows(points, rows)), labels_(gather_labels(rows, labels)),
      flat_(store::EmbeddingView::of(points_), metric),
      engine_(flat_, {.threads = threads, .metrics = nullptr}) {
  if (rows.empty()) throw std::invalid_argument("knn: empty training set");
}

std::uint32_t KnnClassifier::vote(const std::vector<Neighbor>& neighbors) const {
  // Majority vote; ties resolve to the tied label with the nearest voter,
  // which is also the first encountered since voters are distance-sorted.
  std::unordered_map<std::uint32_t, std::size_t> votes;
  std::uint32_t best_label = labels_[neighbors[0].id];
  std::size_t best_votes = 0;
  for (const Neighbor& n : neighbors) {
    const std::uint32_t label = labels_[n.id];
    const std::size_t v = ++votes[label];
    if (v > best_votes) {
      best_votes = v;
      best_label = label;
    }
  }
  return best_label;
}

std::uint32_t KnnClassifier::predict(std::span<const float> query, std::size_t k) const {
  if (k == 0) throw std::invalid_argument("knn: k == 0");
  thread_local std::vector<Neighbor> neighbors;
  engine_.query_into(query, k, neighbors);
  return vote(neighbors);
}

std::vector<std::uint32_t> KnnClassifier::predict_rows(
    const MatrixF& points, std::span<const std::size_t> rows, std::size_t k) const {
  if (k == 0) throw std::invalid_argument("knn: k == 0");
  const auto results = engine_.query_rows(points, rows, k);
  std::vector<std::uint32_t> out;
  out.reserve(results.size());
  for (const auto& neighbors : results) out.push_back(vote(neighbors));
  return out;
}

}  // namespace v2v::index
