// The ANN serving layer's core abstraction: a VectorIndex answers top-k
// nearest-neighbor queries over an EmbeddingView. Two implementations ship
// (paper §V serves k-NN feature prediction; the ROADMAP north star needs
// it at traffic scale):
//
//   FlatIndex  exact brute-force scan on the kernels:: layer — the
//              correctness oracle every approximate index is measured
//              against, and the engine behind KnnClassifier.
//   IvfIndex   inverted-file index: a coarse k-means quantizer partitions
//              the rows into nlist posting lists; a query scans only the
//              nprobe nearest lists. Approximate — recall is traded
//              against QPS through nprobe.
//
// Distances are doubles: cosine distance in [0, 2] (zero vectors are
// maximally distant, matching common/vec_math.hpp) or squared Euclidean.
// Results order by (distance, id) ascending, so ties are deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace v2v::index {

enum class DistanceMetric : std::uint8_t { kCosine, kEuclidean };

struct Neighbor {
  std::uint32_t id = 0;
  double distance = 0.0;
};

/// Strict weak ordering used for every result list: nearest first, ties
/// broken toward the smaller id.
[[nodiscard]] inline bool neighbor_less(const Neighbor& a, const Neighbor& b) noexcept {
  return a.distance < b.distance || (a.distance == b.distance && a.id < b.id);
}

class VectorIndex {
 public:
  VectorIndex() = default;
  VectorIndex(const VectorIndex&) = delete;
  VectorIndex& operator=(const VectorIndex&) = delete;
  virtual ~VectorIndex() = default;

  /// Number of indexed vectors.
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] virtual std::size_t dimensions() const noexcept = 0;
  [[nodiscard]] virtual DistanceMetric metric() const noexcept = 0;

  /// Top-k nearest neighbors of `query` into `out` (cleared first), sorted
  /// by neighbor_less. k is clamped to size(). Must be safe to call
  /// concurrently from distinct threads.
  virtual void search_into(std::span<const float> query, std::size_t k,
                           std::vector<Neighbor>& out) const = 0;

  /// Reads every stored vector in [begin, end) once — prefaults mmapped
  /// pages and pulls packed codes into cache. Returns an arbitrary
  /// data-dependent value so the reads cannot be optimized away. Safe
  /// concurrently with searches.
  virtual double warm_rows(std::size_t begin, std::size_t end) const = 0;

  [[nodiscard]] std::vector<Neighbor> search(std::span<const float> query,
                                             std::size_t k) const {
    std::vector<Neighbor> out;
    search_into(query, k, out);
    return out;
  }
};

}  // namespace v2v::index
