// Exact brute-force nearest-neighbor search over an EmbeddingView: the
// correctness oracle of the index layer and the engine behind the paper's
// k-NN experiments. Per-row distances run on the dispatched SIMD kernels;
// row norms for the cosine metric are precomputed once at build time so a
// query costs one ddot per row.
//
// Exactness contract: distances are computed with the same arithmetic as
// common/vec_math.hpp (cosine_distance incl. its zero-vector convention,
// kernels::sqdist for Euclidean) and ties break by (distance, id)
// ascending — bit-identical to the pre-index brute-force KnnClassifier,
// which is what keeps the fig9/fig10 crossval numbers exactly reproducible.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "v2v/index/vector_index.hpp"
#include "v2v/store/embedding_view.hpp"

namespace v2v::index {

class FlatIndex final : public VectorIndex {
 public:
  /// The view's backing storage must outlive the index.
  explicit FlatIndex(store::EmbeddingView data,
                     DistanceMetric metric = DistanceMetric::kCosine);

  [[nodiscard]] std::size_t size() const noexcept override { return data_.rows(); }
  [[nodiscard]] std::size_t dimensions() const noexcept override {
    return data_.dimensions();
  }
  [[nodiscard]] DistanceMetric metric() const noexcept override { return metric_; }

  void search_into(std::span<const float> query, std::size_t k,
                   std::vector<Neighbor>& out) const override;

  double warm_rows(std::size_t begin, std::size_t end) const override;

  [[nodiscard]] const store::EmbeddingView& data() const noexcept { return data_; }

 private:
  store::EmbeddingView data_;
  DistanceMetric metric_;
  std::vector<double> norms_;  ///< per-row L2 norms (cosine metric only)
};

}  // namespace v2v::index
