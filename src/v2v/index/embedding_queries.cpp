#include "v2v/index/embedding_queries.hpp"

#include <algorithm>

#include "v2v/common/kernels.hpp"
#include "v2v/index/flat_index.hpp"
#include "v2v/store/embedding_view.hpp"

namespace v2v::index {

std::vector<std::uint32_t> nearest(const VectorIndex& idx,
                                   std::span<const float> query, std::size_t k,
                                   std::span<const std::uint32_t> exclude) {
  // Over-fetch by the exclusion count so k survivors remain even when all
  // excluded ids rank at the top.
  const auto found = idx.search(query, k + exclude.size());
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (const Neighbor& n : found) {
    if (std::find(exclude.begin(), exclude.end(), n.id) != exclude.end()) continue;
    out.push_back(n.id);
    if (out.size() == k) break;
  }
  return out;
}

std::vector<std::uint32_t> nearest(const embed::Embedding& embedding,
                                   std::size_t v, std::size_t k) {
  const FlatIndex flat(store::EmbeddingView::of(embedding),
                       DistanceMetric::kCosine);
  const std::uint32_t self[] = {static_cast<std::uint32_t>(v)};
  return nearest(flat, embedding.vector(v), k, self);
}

std::vector<std::uint32_t> analogy(const embed::Embedding& embedding,
                                   std::size_t a, std::size_t b, std::size_t c,
                                   std::size_t k) {
  std::vector<float> query(embedding.dimensions());
  const auto va = embedding.vector(a);
  const auto vb = embedding.vector(b);
  const auto vc = embedding.vector(c);
  std::copy(vb.begin(), vb.end(), query.begin());
  kernels::axpy(-1.0f, va.data(), query.data(), query.size());
  kernels::axpy(1.0f, vc.data(), query.data(), query.size());

  const FlatIndex flat(store::EmbeddingView::of(embedding),
                       DistanceMetric::kCosine);
  const std::uint32_t abc[] = {static_cast<std::uint32_t>(a),
                               static_cast<std::uint32_t>(b),
                               static_cast<std::uint32_t>(c)};
  return nearest(flat, query, k, abc);
}

}  // namespace v2v::index
