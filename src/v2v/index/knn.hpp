// k-nearest-neighbor classification (paper §V): majority vote among the k
// closest training vectors under cosine (default) or Euclidean distance.
// Lives in the index layer since PR 4: neighbor search runs through a
// FlatIndex + QueryEngine (exact — bit-identical distances and tie-breaks
// to the old brute-force scan, so crossval accuracy numbers are
// unchanged), and batch prediction can fan out over the engine's pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "v2v/common/matrix.hpp"
#include "v2v/index/flat_index.hpp"
#include "v2v/index/query_engine.hpp"

namespace v2v::index {

class KnnClassifier {
 public:
  /// Stores (a copy of) the training rows and their labels. `threads`
  /// sizes the engine's batch pool (1 = inline).
  KnnClassifier(const MatrixF& points, std::vector<std::uint32_t> labels,
                DistanceMetric metric = DistanceMetric::kCosine,
                std::size_t threads = 1);

  /// Fit from selected rows of a larger matrix (used by cross-validation).
  KnnClassifier(const MatrixF& points, std::span<const std::size_t> rows,
                std::span<const std::uint32_t> labels,
                DistanceMetric metric = DistanceMetric::kCosine,
                std::size_t threads = 1);

  /// The engine holds a reference to the flat index which views points_;
  /// moving would dangle them, so the classifier is pinned.
  KnnClassifier(const KnnClassifier&) = delete;
  KnnClassifier& operator=(const KnnClassifier&) = delete;

  /// Majority vote among the k nearest training points. Vote ties break
  /// toward the label whose voter is nearest (word2vec k=1 behaviour when
  /// all k labels are distinct).
  [[nodiscard]] std::uint32_t predict(std::span<const float> query, std::size_t k) const;

  [[nodiscard]] std::vector<std::uint32_t> predict_rows(const MatrixF& points,
                                                        std::span<const std::size_t> rows,
                                                        std::size_t k) const;

  [[nodiscard]] std::size_t train_size() const noexcept { return labels_.size(); }
  [[nodiscard]] const QueryEngine& engine() const noexcept { return engine_; }

 private:
  [[nodiscard]] std::uint32_t vote(const std::vector<Neighbor>& neighbors) const;

  MatrixF points_;
  std::vector<std::uint32_t> labels_;
  FlatIndex flat_;
  QueryEngine engine_;
};

}  // namespace v2v::index
