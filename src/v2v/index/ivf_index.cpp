#include "v2v/index/ivf_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "v2v/common/kernels.hpp"
#include "v2v/common/rng.hpp"
#include "v2v/common/thread_pool.hpp"
#include "v2v/common/vec_math.hpp"
#include "v2v/ml/kmeans.hpp"
#include "v2v/obs/metrics.hpp"

namespace v2v::index {
namespace {

/// Copies `src` into `dst`, L2-normalizing when `cosine` (zero rows stay
/// zero, so their dot with any unit query is 0 and their cosine distance
/// comes out as the conventional 1).
void load_row(std::span<const float> src, std::span<float> dst, bool cosine) {
  std::copy(src.begin(), src.end(), dst.begin());
  if (cosine) normalize(dst);
}

}  // namespace

IvfIndex::IvfIndex(store::EmbeddingView data, DistanceMetric metric,
                   IvfConfig config)
    : rows_(data.rows()), dims_(data.dimensions()), metric_(metric),
      nprobe_(config.nprobe) {
  if (rows_ == 0) throw std::invalid_argument("ivf: empty embedding");
  const obs::ScopedTimer span(config.metrics, "ivf_build");
  const bool cosine = metric_ == DistanceMetric::kCosine;

  // --- Quantizer: k-means over a deterministic sample of the rows. ------
  std::size_t sample_count = rows_;
  std::vector<std::size_t> sample;  // empty = identity
  if (config.train_sample != 0 && config.train_sample < rows_) {
    Rng rng(config.seed ^ 0x1c0ffee5eedULL);
    sample = rng.sample_indices(rows_, config.train_sample);
    sample_count = sample.size();
  }
  std::size_t nlist = config.nlist;
  if (nlist == 0) {
    nlist = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(rows_))));
  }
  nlist = std::clamp<std::size_t>(nlist, 1, sample_count);

  // All rows, metric-normalized once: feeds quantizer training, the
  // engine assignment pass, and the posting repack without re-reading
  // (and re-normalizing) the backing store three times.
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  MatrixF normalized(rows_, dims_);
  parallel_for_dynamic(threads, rows_, 0,
                       [&](std::size_t, std::size_t, std::size_t begin,
                           std::size_t end) {
                         for (std::size_t r = begin; r < end; ++r) {
                           load_row(data.row(r), normalized.row(r), cosine);
                         }
                       });

  MatrixF train(sample_count, dims_);
  for (std::size_t i = 0; i < sample_count; ++i) {
    const std::size_t src = sample.empty() ? i : sample[i];
    const auto row = normalized.row(src);
    std::copy(row.begin(), row.end(), train.row(i).begin());
  }

  ml::KMeansConfig kc;
  kc.k = nlist;
  kc.max_iterations = std::max<std::size_t>(1, config.kmeans_iterations);
  kc.restarts = std::max<std::size_t>(1, config.kmeans_restarts);
  kc.seed = config.seed;
  kc.threads = threads;
  kc.assign = config.kmeans_assign;
  kc.metrics = config.metrics;
  const ml::KMeansResult trained = ml::kmeans(train, kc);

  centroids_ = MatrixF(nlist, dims_);
  for (std::size_t c = 0; c < nlist; ++c) {
    const auto src = trained.centroids.row(c);
    const auto dst = centroids_.row(c);
    for (std::size_t j = 0; j < dims_; ++j) dst[j] = static_cast<float>(src[j]);
  }

  // --- Assignment pass: every row to its nearest trained centroid via
  // the k-means engine's exact norm-cached scan (same double-precision
  // quantizer geometry the Lloyd runs used).
  const std::vector<std::uint32_t> assignment = ml::assign_to_centroids(
      normalized, trained.centroids, threads, config.kmeans_assign);

  // --- Repack rows into contiguous per-list postings (stable by id). ----
  list_offsets_.assign(nlist + 1, 0);
  for (const std::uint32_t a : assignment) ++list_offsets_[a + 1];
  for (std::size_t c = 0; c < nlist; ++c) list_offsets_[c + 1] += list_offsets_[c];

  codes_ = MatrixF(rows_, dims_);
  ids_.resize(rows_);
  std::vector<std::size_t> cursor(list_offsets_.begin(), list_offsets_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t slot = cursor[assignment[r]]++;
    ids_[slot] = static_cast<std::uint32_t>(r);
    const auto row = normalized.row(r);
    std::copy(row.begin(), row.end(), codes_.row(slot).begin());
  }

  if (config.metrics != nullptr) {
    config.metrics->gauge("ivf.nlist").set(static_cast<double>(nlist));
    config.metrics->gauge("ivf.build_threads").set(static_cast<double>(threads));
    config.metrics->counter("ivf.rows").add(rows_);
    auto& sizes = config.metrics->histogram(
        "ivf.list_size",
        {0.0, std::max(1.0, static_cast<double>(rows_)), 64});
    for (std::size_t c = 0; c < nlist; ++c) {
      sizes.record(static_cast<double>(list_size(c)));
    }
    config.metrics->gauge("ivf.build_seconds").set(span.seconds());
  }
}

void IvfIndex::search_into(std::span<const float> query, std::size_t k,
                           std::vector<Neighbor>& out) const {
  out.clear();
  k = std::min(k, rows_);
  if (k == 0) return;
  const std::size_t lists = nlist();
  const bool cosine = metric_ == DistanceMetric::kCosine;

  thread_local std::vector<float> qbuf;
  const float* q = query.data();
  if (cosine) {
    qbuf.resize(dims_);
    load_row(query, qbuf, true);
    q = qbuf.data();
  }

  // Rank the coarse centroids; probe the nprobe nearest lists.
  thread_local std::vector<Neighbor> coarse;
  coarse.clear();
  coarse.reserve(lists);
  for (std::size_t c = 0; c < lists; ++c) {
    coarse.push_back({static_cast<std::uint32_t>(c),
                      kernels::sqdist(q, centroids_.row(c).data(), dims_)});
  }
  const std::size_t probes =
      std::min(std::max<std::size_t>(1, nprobe_.load(std::memory_order_relaxed)),
               lists);
  std::partial_sort(coarse.begin(),
                    coarse.begin() + static_cast<std::ptrdiff_t>(probes),
                    coarse.end(), neighbor_less);

  thread_local std::vector<Neighbor> scored;
  scored.clear();
  for (std::size_t p = 0; p < probes; ++p) {
    const std::size_t list = coarse[p].id;
    for (std::size_t slot = list_offsets_[list]; slot < list_offsets_[list + 1];
         ++slot) {
      const float* code = codes_.row(slot).data();
      const double dist = cosine ? 1.0 - kernels::ddot(q, code, dims_)
                                 : kernels::sqdist(q, code, dims_);
      scored.push_back({ids_[slot], dist});
    }
  }

  k = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
                    scored.end(), neighbor_less);
  out.assign(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k));
}

double IvfIndex::warm_rows(std::size_t begin, std::size_t end) const {
  double sum = 0.0;
  end = std::min(end, rows_);
  for (std::size_t slot = begin; slot < end; ++slot) {
    const auto row = codes_.row(slot);
    sum += kernels::ddot(row.data(), row.data(), row.size());
  }
  return sum;
}

}  // namespace v2v::index
