// Public entry point of the library: the V2V pipeline of the paper.
//
//   graph  --(constrained random walks)-->  corpus
//   corpus --(CBOW / SkipGram SGD)------->  Embedding
//   Embedding --> { community detection, label prediction, visualization }
//
// Example:
//   v2v::V2VConfig config;
//   config.walk.walks_per_vertex = 10;
//   config.train.dimensions = 50;
//   auto model = v2v::learn_embedding(graph, config);
//   auto communities = v2v::detect_communities(model.embedding, 10);
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "v2v/dynamic/refresh.hpp"
#include "v2v/embed/embedding.hpp"
#include "v2v/embed/trainer.hpp"
#include "v2v/graph/graph.hpp"
#include "v2v/index/knn.hpp"
#include "v2v/ml/kmeans.hpp"
#include "v2v/ml/metrics.hpp"
#include "v2v/viz/forceatlas2.hpp"
#include "v2v/walk/walker.hpp"

namespace v2v::obs {
class MetricsRegistry;
}  // namespace v2v::obs

namespace v2v {

struct V2VConfig {
  /// Random-walk stage parameters (paper §II-A defaults: t = 1000 walks of
  /// ℓ = 1000 vertices; the struct defaults are laptop-scale).
  walk::WalkConfig walk;
  /// CBOW/SkipGram SGD parameters (paper §II-B defaults: CBOW, window
  /// n = 5, negative sampling).
  embed::TrainConfig train;
  /// k-means engine parameters for the community-detection stage; `k` is
  /// overwritten by the detect_communities argument. Config-file keys:
  /// kmeans.threads, kmeans.restarts, kmeans.assign.
  ml::KMeansConfig kmeans;
  /// Incremental-refresh knobs for dynamic::RefreshSession (config-file
  /// keys refresh.epochs, refresh.initial_lr, refresh.compact_min_delta,
  /// refresh.compact_ratio). Ignored by plain learn_embedding.
  dynamic::RefreshTuning refresh;
  /// Master seed; when nonzero it derives the walk and train seeds so one
  /// knob controls full reproducibility.
  std::uint64_t seed = 42;
  /// When true, walks are generated on the fly during SGD instead of
  /// materializing the corpus (embed::train_embedding_streaming). Use for
  /// paper-scale walk budgets (t = l = 1000) whose corpus would not fit
  /// in memory. Fresh walks are drawn each epoch.
  bool streaming = false;
  /// Optional observability sink. When set, learn_embedding propagates it
  /// into the walk and train stages (unless those configs already carry
  /// their own registry) and wraps the run in a "learn_embedding" stage
  /// span; export with obs/export.hpp. Null (default) disables
  /// instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
};

struct V2VModel {
  embed::Embedding embedding;            ///< one dims-vector per vertex
  embed::TrainStats train_stats;         ///< per-epoch losses, example counts
  double walk_seconds = 0.0;             ///< corpus generation wall time (s; 0 when streaming)
  double train_seconds = 0.0;            ///< SGD wall time (s)
  std::size_t corpus_walks = 0;          ///< walks generated (count)
  std::size_t corpus_tokens = 0;         ///< corpus vertices incl. starts (count; 0 when streaming)
  /// Warm-start state for dynamic refresh / snapshot v3; populated only
  /// when config.train.capture_checkpoint was set.
  std::optional<embed::TrainerCheckpoint> checkpoint;

  /// Total learning time, the paper's "training time" column.
  [[nodiscard]] double learn_seconds() const noexcept {
    return walk_seconds + train_seconds;
  }
};

/// Runs walks + training; the returned embedding covers every vertex.
[[nodiscard]] V2VModel learn_embedding(const graph::Graph& g, const V2VConfig& config);

// ---------------------------------------------------------------------------
// Applications (paper §III–§V)
// ---------------------------------------------------------------------------

struct CommunityDetectionResult {
  std::vector<std::uint32_t> labels;  ///< cluster id per vertex, in [0, k)
  double cluster_seconds = 0.0;  ///< k-means wall time (s): Table I's "Running time"
  double sse = 0.0;              ///< within-cluster sum of squared distances
};

/// Paper §III: k-means over the embedding space. `kmeans_config.k` is
/// overwritten by `k`. When `metrics` is non-null it is propagated into
/// the k-means stage (unless kmeans_config already carries a registry).
[[nodiscard]] CommunityDetectionResult detect_communities(
    const embed::Embedding& embedding, std::size_t k,
    ml::KMeansConfig kmeans_config = {}, obs::MetricsRegistry* metrics = nullptr);

/// Like detect_communities but chooses k automatically by the silhouette
/// curve over [k_min, k_max] (paper §VII asks for principled parameter
/// selection). The chosen k is reported in the result.
struct AutoCommunityResult {
  CommunityDetectionResult detection;  ///< clustering at the chosen k
  std::size_t chosen_k = 0;            ///< k with the best mean silhouette
  std::vector<std::pair<std::size_t, double>> silhouette_curve;  ///< (k, score) pairs
};
[[nodiscard]] AutoCommunityResult detect_communities_auto(
    const embed::Embedding& embedding, std::size_t k_min = 2, std::size_t k_max = 20,
    ml::KMeansConfig kmeans_config = {}, obs::MetricsRegistry* metrics = nullptr);

struct LabelPredictionResult {
  double accuracy = 0.0;       ///< mean accuracy in [0, 1] over folds and repeats
  double stddev = 0.0;         ///< accuracy standard deviation across repeats
  std::size_t predictions = 0; ///< total test predictions made (count)
};

/// Paper §V: k-NN label prediction evaluated with `folds`-fold cross
/// validation repeated `repeats` times (paper: 10-fold, 10 repeats).
/// Prediction runs on the index layer's QueryEngine in exact FlatIndex
/// mode, so the numbers match the pre-index brute-force implementation
/// bit for bit.
[[nodiscard]] LabelPredictionResult evaluate_label_prediction(
    const embed::Embedding& embedding, const std::vector<std::uint32_t>& labels,
    std::size_t neighbors, std::size_t folds = 10, std::size_t repeats = 10,
    index::DistanceMetric metric = index::DistanceMetric::kCosine,
    std::uint64_t seed = 1);

/// Paper §IV: PCA projection of the embedding to `components` dimensions,
/// returned as 2-D points when components == 2 (use ml::Pca directly for
/// higher-dimensional projections).
[[nodiscard]] std::vector<viz::Point2> project_pca_2d(const embed::Embedding& embedding);

}  // namespace v2v
