#include "v2v/core/analysis.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "v2v/common/rng.hpp"
#include "v2v/index/flat_index.hpp"
#include "v2v/ml/silhouette.hpp"
#include "v2v/store/embedding_view.hpp"

namespace v2v {

CosineMarginReport cosine_margin(const embed::Embedding& embedding,
                                 std::span<const std::uint32_t> labels,
                                 std::size_t sample_pairs, std::uint64_t seed) {
  const std::size_t n = embedding.vertex_count();
  if (labels.size() != n) {
    throw std::invalid_argument("cosine_margin: labels size mismatch");
  }
  if (n < 2) return {};

  double same = 0.0, cross = 0.0;
  std::size_t same_n = 0, cross_n = 0;
  auto account = [&](std::size_t a, std::size_t b) {
    const double sim = embedding.cosine_similarity(a, b);
    if (labels[a] == labels[b]) {
      same += sim;
      ++same_n;
    } else {
      cross += sim;
      ++cross_n;
    }
  };

  const std::size_t total_pairs = n * (n - 1) / 2;
  if (sample_pairs == 0 || sample_pairs >= total_pairs) {
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) account(a, b);
    }
  } else {
    Rng rng(seed);
    std::size_t drawn = 0;
    while (drawn < sample_pairs) {
      const std::size_t a = rng.next_below(n);
      const std::size_t b = rng.next_below(n);
      if (a == b) continue;
      account(a, b);
      ++drawn;
    }
  }

  CosineMarginReport report;
  if (same_n > 0) report.mean_same_label = same / static_cast<double>(same_n);
  if (cross_n > 0) report.mean_cross_label = cross / static_cast<double>(cross_n);
  return report;
}

double neighborhood_purity(const embed::Embedding& embedding,
                           std::span<const std::uint32_t> labels, std::size_t k) {
  const std::size_t n = embedding.vertex_count();
  if (labels.size() != n) {
    throw std::invalid_argument("neighborhood_purity: labels size mismatch");
  }
  if (n < 2 || k == 0) return 0.0;
  // One FlatIndex for all n queries (the old per-vertex Embedding::nearest
  // rescanned the matrix per call); over-fetch by one and drop the vertex
  // itself from its own neighborhood.
  const index::FlatIndex flat(store::EmbeddingView::of(embedding),
                              index::DistanceMetric::kCosine);
  std::vector<index::Neighbor> scratch;
  double purity_sum = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    flat.search_into(embedding.vector(v), k + 1, scratch);
    std::size_t matching = 0, neighbors = 0;
    for (const index::Neighbor& u : scratch) {
      if (u.id == v || neighbors == k) continue;
      matching += labels[u.id] == labels[v] ? 1 : 0;
      ++neighbors;
    }
    if (neighbors == 0) continue;
    purity_sum += static_cast<double>(matching) / static_cast<double>(neighbors);
  }
  return purity_sum / static_cast<double>(n);
}

EmbeddingQualityReport evaluate_embedding_quality(
    const embed::Embedding& embedding, std::span<const std::uint32_t> labels,
    std::size_t neighbors, std::size_t sample_pairs, std::uint64_t seed) {
  EmbeddingQualityReport report;
  report.cosine = cosine_margin(embedding, labels, sample_pairs, seed);
  report.neighborhood_purity = neighborhood_purity(embedding, labels, neighbors);
  report.silhouette = ml::silhouette_score(embedding.matrix(), labels);
  return report;
}

std::string describe(const EmbeddingQualityReport& report) {
  std::ostringstream os;
  os << "cosine similarity: " << report.cosine.mean_same_label
     << " within labels vs " << report.cosine.mean_cross_label
     << " across (margin " << report.cosine.margin() << "); neighborhood purity "
     << report.neighborhood_purity << "; label silhouette " << report.silhouette;
  return os.str();
}

}  // namespace v2v
