// Embedding quality diagnostics, ground-truth-aware and unsupervised.
// These are the measurements the paper's figures are built from, exposed
// as API so downstream users can evaluate their own embeddings.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "v2v/embed/embedding.hpp"

namespace v2v {

struct CosineMarginReport {
  double mean_same_label = 0.0;   ///< mean cosine similarity within a label
  double mean_cross_label = 0.0;  ///< mean cosine similarity across labels
  /// mean_same_label - mean_cross_label; > 0 means labels are separable.
  [[nodiscard]] double margin() const { return mean_same_label - mean_cross_label; }
};

/// Cosine-similarity margin between same-label and cross-label vertex
/// pairs. Exact when the pair count is small; otherwise estimated from
/// `sample_pairs` random pairs (0 = always exact).
[[nodiscard]] CosineMarginReport cosine_margin(
    const embed::Embedding& embedding, std::span<const std::uint32_t> labels,
    std::size_t sample_pairs = 0, std::uint64_t seed = 1);

/// Fraction of each vertex's k nearest neighbors that share its label,
/// averaged over all vertices ("neighborhood purity"). 1.0 means every
/// local neighborhood is label-pure.
[[nodiscard]] double neighborhood_purity(const embed::Embedding& embedding,
                                         std::span<const std::uint32_t> labels,
                                         std::size_t k = 5);

struct EmbeddingQualityReport {
  CosineMarginReport cosine;
  double neighborhood_purity = 0.0;
  double silhouette = 0.0;  ///< silhouette of the ground-truth partition
};

/// One-call diagnostic bundle; `sample_pairs` bounds the cosine-margin
/// cost on large embeddings.
[[nodiscard]] EmbeddingQualityReport evaluate_embedding_quality(
    const embed::Embedding& embedding, std::span<const std::uint32_t> labels,
    std::size_t neighbors = 5, std::size_t sample_pairs = 20000,
    std::uint64_t seed = 1);

/// Human-readable one-paragraph rendering of the report.
[[nodiscard]] std::string describe(const EmbeddingQualityReport& report);

}  // namespace v2v
