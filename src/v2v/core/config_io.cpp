#include "v2v/core/config_io.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "v2v/common/string_util.hpp"

namespace v2v {
namespace {

const char* bias_name(walk::StepBias bias) {
  switch (bias) {
    case walk::StepBias::kUniform: return "uniform";
    case walk::StepBias::kEdgeWeight: return "edge-weight";
    case walk::StepBias::kVertexWeight: return "vertex-weight";
  }
  return "uniform";
}

walk::StepBias parse_bias(std::string_view value) {
  if (value == "uniform") return walk::StepBias::kUniform;
  if (value == "edge-weight") return walk::StepBias::kEdgeWeight;
  if (value == "vertex-weight") return walk::StepBias::kVertexWeight;
  throw std::runtime_error("config: unknown walk.bias value");
}

ml::KMeansAssign parse_assign(std::string_view value) {
  if (value == "naive") return ml::KMeansAssign::kNaive;
  if (value == "norm_cached") return ml::KMeansAssign::kNormCached;
  if (value == "hamerly") return ml::KMeansAssign::kHamerly;
  throw std::runtime_error("config: unknown kmeans.assign value");
}

}  // namespace

void save_config(const V2VConfig& config, std::ostream& out) {
  out << "# V2V configuration\n";
  out << "seed = " << config.seed << '\n';
  out << "streaming = " << (config.streaming ? 1 : 0) << '\n';
  out << "walk.walks_per_vertex = " << config.walk.walks_per_vertex << '\n';
  out << "walk.walk_length = " << config.walk.walk_length << '\n';
  out << "walk.bias = " << bias_name(config.walk.bias) << '\n';
  out << "walk.temporal = " << (config.walk.temporal ? 1 : 0) << '\n';
  out << "walk.time_window = " << config.walk.time_window << '\n';
  out << "walk.threads = " << config.walk.threads << '\n';
  out << "walk.grain = " << config.walk.grain << '\n';
  out << "walk.spool_dir = " << config.walk.spool_dir << '\n';
  out << "walk.spool_buffer_mb = " << config.walk.spool_buffer_mb << '\n';
  out << "train.dimensions = " << config.train.dimensions << '\n';
  out << "train.window = " << config.train.window << '\n';
  out << "train.architecture = "
      << (config.train.architecture == embed::Architecture::kCbow ? "cbow"
                                                                  : "skipgram")
      << '\n';
  out << "train.objective = "
      << (config.train.objective == embed::Objective::kNegativeSampling
              ? "negative-sampling"
              : "hierarchical-softmax")
      << '\n';
  out << "train.negative = " << config.train.negative << '\n';
  out << "train.epochs = " << config.train.epochs << '\n';
  out << "train.min_epochs = " << config.train.min_epochs << '\n';
  out << "train.convergence_tol = " << config.train.convergence_tol << '\n';
  out << "train.initial_lr = " << config.train.initial_lr << '\n';
  out << "train.min_lr_fraction = " << config.train.min_lr_fraction << '\n';
  out << "train.subsample = " << config.train.subsample << '\n';
  out << "train.threads = " << config.train.threads << '\n';
  out << "train.grain = " << config.train.grain << '\n';
  out << "kmeans.threads = " << config.kmeans.threads << '\n';
  out << "kmeans.restarts = " << config.kmeans.restarts << '\n';
  out << "kmeans.assign = " << ml::assign_mode_name(config.kmeans.assign) << '\n';
  out << "refresh.epochs = " << config.refresh.epochs << '\n';
  out << "refresh.initial_lr = " << config.refresh.initial_lr << '\n';
  out << "refresh.compact_min_delta = " << config.refresh.compact_min_delta << '\n';
  out << "refresh.compact_ratio = " << config.refresh.compact_ratio << '\n';
}

void save_config_file(const V2VConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("config: cannot open " + path);
  save_config(config, out);
}

V2VConfig load_config(std::istream& in) {
  V2VConfig config;

  auto as_size = [](std::string_view v, std::size_t& target) {
    const auto parsed = parse_int(v);
    if (!parsed || *parsed < 0) throw std::runtime_error("config: bad integer value");
    target = static_cast<std::size_t>(*parsed);
  };
  auto as_u64 = [](std::string_view v, std::uint64_t& target) {
    const auto parsed = parse_int(v);
    if (!parsed || *parsed < 0) throw std::runtime_error("config: bad integer value");
    target = static_cast<std::uint64_t>(*parsed);
  };
  auto as_double = [](std::string_view v, double& target) {
    const auto parsed = parse_double(v);
    if (!parsed) throw std::runtime_error("config: bad numeric value");
    target = *parsed;
  };

  const std::map<std::string, std::function<void(std::string_view)>> setters{
      {"seed", [&](std::string_view v) { as_u64(v, config.seed); }},
      {"streaming",
       [&](std::string_view v) { config.streaming = v == "1" || v == "true"; }},
      {"walk.walks_per_vertex",
       [&](std::string_view v) { as_size(v, config.walk.walks_per_vertex); }},
      {"walk.walk_length",
       [&](std::string_view v) { as_size(v, config.walk.walk_length); }},
      {"walk.bias",
       [&](std::string_view v) { config.walk.bias = parse_bias(v); }},
      {"walk.temporal",
       [&](std::string_view v) { config.walk.temporal = v == "1" || v == "true"; }},
      {"walk.time_window",
       [&](std::string_view v) { as_double(v, config.walk.time_window); }},
      {"walk.threads", [&](std::string_view v) { as_size(v, config.walk.threads); }},
      {"walk.grain", [&](std::string_view v) { as_size(v, config.walk.grain); }},
      {"walk.spool_dir",
       [&](std::string_view v) { config.walk.spool_dir = std::string(v); }},
      {"walk.spool_buffer_mb",
       [&](std::string_view v) { as_size(v, config.walk.spool_buffer_mb); }},
      {"train.dimensions",
       [&](std::string_view v) { as_size(v, config.train.dimensions); }},
      {"train.window", [&](std::string_view v) { as_size(v, config.train.window); }},
      {"train.architecture",
       [&](std::string_view v) {
         if (v == "cbow") {
           config.train.architecture = embed::Architecture::kCbow;
         } else if (v == "skipgram") {
           config.train.architecture = embed::Architecture::kSkipGram;
         } else {
           throw std::runtime_error("config: unknown train.architecture");
         }
       }},
      {"train.objective",
       [&](std::string_view v) {
         if (v == "negative-sampling") {
           config.train.objective = embed::Objective::kNegativeSampling;
         } else if (v == "hierarchical-softmax") {
           config.train.objective = embed::Objective::kHierarchicalSoftmax;
         } else {
           throw std::runtime_error("config: unknown train.objective");
         }
       }},
      {"train.negative",
       [&](std::string_view v) { as_size(v, config.train.negative); }},
      {"train.epochs", [&](std::string_view v) { as_size(v, config.train.epochs); }},
      {"train.min_epochs",
       [&](std::string_view v) { as_size(v, config.train.min_epochs); }},
      {"train.convergence_tol",
       [&](std::string_view v) { as_double(v, config.train.convergence_tol); }},
      {"train.initial_lr",
       [&](std::string_view v) { as_double(v, config.train.initial_lr); }},
      {"train.min_lr_fraction",
       [&](std::string_view v) { as_double(v, config.train.min_lr_fraction); }},
      {"train.subsample",
       [&](std::string_view v) { as_double(v, config.train.subsample); }},
      {"train.threads",
       [&](std::string_view v) { as_size(v, config.train.threads); }},
      {"train.grain", [&](std::string_view v) { as_size(v, config.train.grain); }},
      {"kmeans.threads",
       [&](std::string_view v) { as_size(v, config.kmeans.threads); }},
      {"kmeans.restarts",
       [&](std::string_view v) { as_size(v, config.kmeans.restarts); }},
      {"kmeans.assign",
       [&](std::string_view v) { config.kmeans.assign = parse_assign(v); }},
      {"refresh.epochs",
       [&](std::string_view v) { as_size(v, config.refresh.epochs); }},
      {"refresh.initial_lr",
       [&](std::string_view v) { as_double(v, config.refresh.initial_lr); }},
      {"refresh.compact_min_delta",
       [&](std::string_view v) { as_size(v, config.refresh.compact_min_delta); }},
      {"refresh.compact_ratio",
       [&](std::string_view v) { as_double(v, config.refresh.compact_ratio); }},
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    const std::string_view body =
        trim(hash == std::string::npos ? std::string_view(line)
                                       : std::string_view(line).substr(0, hash));
    if (body.empty()) continue;
    const auto eq = body.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("config line " + std::to_string(line_no) +
                               ": expected 'key = value'");
    }
    const std::string key{trim(body.substr(0, eq))};
    const std::string_view value = trim(body.substr(eq + 1));
    const auto it = setters.find(key);
    if (it == setters.end()) {
      throw std::runtime_error("config line " + std::to_string(line_no) +
                               ": unknown key '" + key + "'");
    }
    it->second(value);
  }
  return config;
}

V2VConfig load_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  return load_config(in);
}

}  // namespace v2v
