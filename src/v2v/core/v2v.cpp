#include "v2v/core/v2v.hpp"

#include <cmath>
#include <stdexcept>

#include "v2v/common/check.hpp"
#include "v2v/common/rng.hpp"
#include "v2v/common/timer.hpp"
#include "v2v/ml/crossval.hpp"
#include "v2v/ml/pca.hpp"
#include "v2v/ml/silhouette.hpp"
#include "v2v/obs/metrics.hpp"
#include "v2v/walk/corpus_spool.hpp"

namespace v2v {

V2VModel learn_embedding(const graph::Graph& g, const V2VConfig& config) {
  if (g.vertex_count() == 0) {
    throw std::invalid_argument("learn_embedding: empty graph");
  }
  V2V_CHECK(config.walk.walk_length >= 1, "learn_embedding: walk_length < 1");
  V2V_CHECK(config.train.dimensions >= 1, "learn_embedding: dimensions < 1");
  V2VModel model;
  walk::WalkConfig walk_config = config.walk;
  embed::TrainConfig train_config = config.train;
  if (walk_config.metrics == nullptr) walk_config.metrics = config.metrics;
  if (train_config.metrics == nullptr) train_config.metrics = config.metrics;
  const obs::ScopedTimer pipeline_span(config.metrics, "learn_embedding");
  std::uint64_t walk_seed = 0x9e3779b97f4a7c15ULL;
  if (config.seed != 0) {
    std::uint64_t sm = config.seed;
    walk_seed = splitmix64(sm);
    train_config.seed = splitmix64(sm);
  }

  if (config.streaming) {
    // Walk generation happens inside the trainer; walk_seconds stays 0 and
    // the corpus counters report the per-epoch walk budget.
    train_config.seed ^= walk_seed;
    auto result = embed::train_embedding_streaming(g, walk_config, train_config);
    model.corpus_walks = g.vertex_count() * walk_config.walks_per_vertex;
    model.corpus_tokens = 0;  // never materialized
    model.train_seconds = result.stats.train_seconds;
    model.train_stats = std::move(result.stats);
    model.embedding = std::move(result.embedding);
    if (result.checkpoint) {
      result.checkpoint->walks_per_vertex = walk_config.walks_per_vertex;
      result.checkpoint->walk_length = walk_config.walk_length;
      result.checkpoint->walk_seed = walk_seed;
      model.checkpoint = std::move(result.checkpoint);
    }
    return model;
  }

  embed::TrainResult result;
  if (!walk_config.spool_dir.empty()) {
    // Out-of-core path: walks stream to disk segments as they are
    // generated, then training reads them back through the mmap'd
    // SpooledCorpus. The spool mirrors generate_corpus's sharding, so a
    // fixed seed produces the same epoch_loss trajectory either way.
    WallTimer timer;
    const walk::SpoolStats stats =
        walk::generate_corpus_spooled(g, walk_config, walk_seed);
    model.walk_seconds = timer.seconds();
    model.corpus_walks = stats.walks;
    model.corpus_tokens = stats.tokens;
    const walk::SpooledCorpus corpus =
        walk::SpooledCorpus::open(walk_config.spool_dir);
    result = embed::train_embedding(corpus, g.vertex_count(), train_config);
  } else {
    WallTimer timer;
    const walk::Corpus corpus = walk::generate_corpus(g, walk_config, walk_seed);
    model.walk_seconds = timer.seconds();
    model.corpus_walks = corpus.walk_count();
    model.corpus_tokens = corpus.token_count();
    result = embed::train_embedding(corpus, g.vertex_count(), train_config);
  }
  model.train_seconds = result.stats.train_seconds;
  model.train_stats = std::move(result.stats);
  model.embedding = std::move(result.embedding);
  if (result.checkpoint) {
    result.checkpoint->walks_per_vertex = walk_config.walks_per_vertex;
    result.checkpoint->walk_length = walk_config.walk_length;
    result.checkpoint->walk_seed = walk_seed;
    model.checkpoint = std::move(result.checkpoint);
  }
  return model;
}

CommunityDetectionResult detect_communities(const embed::Embedding& embedding,
                                            std::size_t k,
                                            ml::KMeansConfig kmeans_config,
                                            obs::MetricsRegistry* metrics) {
  V2V_CHECK(k >= 1, "detect_communities: k < 1");
  V2V_CHECK(k <= embedding.vertex_count(),
            "detect_communities: k exceeds vertex count");
  kmeans_config.k = k;
  if (kmeans_config.metrics == nullptr) kmeans_config.metrics = metrics;
  WallTimer timer;
  auto clusters = ml::kmeans(embedding.matrix(), kmeans_config);
  CommunityDetectionResult result;
  result.cluster_seconds = timer.seconds();
  result.labels = std::move(clusters.assignment);
  result.sse = clusters.sse;
  return result;
}

AutoCommunityResult detect_communities_auto(const embed::Embedding& embedding,
                                            std::size_t k_min, std::size_t k_max,
                                            ml::KMeansConfig kmeans_config,
                                            obs::MetricsRegistry* metrics) {
  V2V_CHECK(k_min >= 2, "detect_communities_auto: k_min < 2");
  V2V_CHECK(k_min <= k_max, "detect_communities_auto: k_min > k_max");
  k_max = std::min(k_max, embedding.vertex_count());
  const auto selection = ml::select_k_by_silhouette(
      embedding.matrix(), k_min, k_max, kmeans_config.restarts, kmeans_config.seed,
      kmeans_config.threads);
  AutoCommunityResult result;
  result.chosen_k = selection.best_k;
  result.silhouette_curve = selection.scores;
  result.detection =
      detect_communities(embedding, selection.best_k, kmeans_config, metrics);
  return result;
}

LabelPredictionResult evaluate_label_prediction(const embed::Embedding& embedding,
                                                const std::vector<std::uint32_t>& labels,
                                                std::size_t neighbors, std::size_t folds,
                                                std::size_t repeats,
                                                index::DistanceMetric metric,
                                                std::uint64_t seed) {
  if (labels.size() != embedding.vertex_count()) {
    throw std::invalid_argument(
        "evaluate_label_prediction: labels size != vertex count");
  }
  V2V_CHECK(neighbors >= 1, "evaluate_label_prediction: neighbors < 1");
  V2V_CHECK(folds >= 2, "evaluate_label_prediction: folds < 2");
  V2V_CHECK(repeats >= 1, "evaluate_label_prediction: repeats < 1");
  LabelPredictionResult result;
  Rng rng(seed);
  std::vector<double> repeat_accuracy;
  repeat_accuracy.reserve(repeats);

  for (std::size_t rep = 0; rep < repeats; ++rep) {
    const auto split = ml::make_kfold(labels.size(), folds, rng);
    std::size_t correct = 0, total = 0;
    for (const auto& fold : split) {
      const index::KnnClassifier classifier(embedding.matrix(), fold.train, labels,
                                            metric);
      for (const std::size_t test_row : fold.test) {
        const auto predicted =
            classifier.predict(embedding.vector(test_row), neighbors);
        correct += predicted == labels[test_row] ? 1 : 0;
        ++total;
      }
    }
    repeat_accuracy.push_back(static_cast<double>(correct) /
                              static_cast<double>(total));
    result.predictions += total;
  }

  double mean = 0.0;
  for (const double a : repeat_accuracy) mean += a;
  mean /= static_cast<double>(repeat_accuracy.size());
  double var = 0.0;
  for (const double a : repeat_accuracy) var += (a - mean) * (a - mean);
  var /= static_cast<double>(repeat_accuracy.size());
  result.accuracy = mean;
  result.stddev = std::sqrt(var);
  return result;
}

std::vector<viz::Point2> project_pca_2d(const embed::Embedding& embedding) {
  V2V_CHECK(embedding.vertex_count() > 0, "project_pca_2d: empty embedding");
  const ml::Pca pca(embedding.matrix());
  const MatrixD projected = pca.transform(embedding.matrix(), 2);
  std::vector<viz::Point2> points(projected.rows());
  for (std::size_t i = 0; i < projected.rows(); ++i) {
    points[i].x = projected(i, 0);
    points[i].y = projected.cols() > 1 ? projected(i, 1) : 0.0;
  }
  return points;
}

}  // namespace v2v
