// Text (de)serialization of V2VConfig as "key = value" lines, so every
// experiment can be re-run from a saved config file. Unknown keys are an
// error (catches typos); missing keys keep their defaults.
#pragma once

#include <iosfwd>
#include <string>

#include "v2v/core/v2v.hpp"

namespace v2v {

void save_config(const V2VConfig& config, std::ostream& out);
void save_config_file(const V2VConfig& config, const std::string& path);

[[nodiscard]] V2VConfig load_config(std::istream& in);
[[nodiscard]] V2VConfig load_config_file(const std::string& path);

}  // namespace v2v
