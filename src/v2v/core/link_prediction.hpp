// Link prediction on V2V embeddings (paper conclusion: the embedding is
// "useful ... in predicting relationships between pairs of vertices").
// Scores a candidate edge (u, v) by the cosine similarity of the two
// vertex vectors, evaluated with ROC-AUC on a held-out edge split; a
// common-neighbors heuristic is included as the graph-based baseline.
#pragma once

#include <span>
#include <vector>

#include "v2v/core/v2v.hpp"
#include "v2v/embed/embedding.hpp"
#include "v2v/graph/graph.hpp"

namespace v2v {

/// ROC-AUC of score-ranked positives vs negatives: the probability that a
/// random positive outscores a random negative (ties count 1/2). Exact
/// O((p+n) log(p+n)) computation.
[[nodiscard]] double roc_auc(std::span<const double> positive_scores,
                             std::span<const double> negative_scores);

/// Cosine-similarity edge scores from an embedding.
[[nodiscard]] std::vector<double> score_edges_cosine(
    const embed::Embedding& embedding,
    std::span<const std::pair<graph::VertexId, graph::VertexId>> pairs);

/// Common-neighbors counts on a graph (the classic structural baseline).
[[nodiscard]] std::vector<double> score_edges_common_neighbors(
    const graph::Graph& g,
    std::span<const std::pair<graph::VertexId, graph::VertexId>> pairs);

struct LinkPredictionResult {
  double v2v_auc = 0.0;               ///< cosine-over-embedding AUC
  double common_neighbors_auc = 0.0;  ///< structural baseline AUC
  std::size_t test_edges = 0;
};

/// End-to-end evaluation: splits edges, embeds the training graph with
/// `config`, and reports AUC for both scorers.
[[nodiscard]] LinkPredictionResult evaluate_link_prediction(const graph::Graph& g,
                                                            const V2VConfig& config,
                                                            double test_fraction,
                                                            std::uint64_t seed);

}  // namespace v2v
