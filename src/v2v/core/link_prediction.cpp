#include "v2v/core/link_prediction.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "v2v/graph/perturb.hpp"

namespace v2v {

double roc_auc(std::span<const double> positive_scores,
               std::span<const double> negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) {
    throw std::invalid_argument("roc_auc: need both positives and negatives");
  }
  // Rank-sum (Mann-Whitney U) formulation with midranks for ties.
  struct Entry {
    double score;
    bool positive;
  };
  std::vector<Entry> entries;
  entries.reserve(positive_scores.size() + negative_scores.size());
  for (const double s : positive_scores) entries.push_back({s, true});
  for (const double s : negative_scores) entries.push_back({s, false});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.score < b.score; });

  double rank_sum = 0.0;
  std::size_t i = 0;
  while (i < entries.size()) {
    std::size_t j = i;
    while (j < entries.size() && entries[j].score == entries[i].score) ++j;
    const double midrank = (static_cast<double>(i) + static_cast<double>(j - 1)) / 2.0 + 1.0;
    for (std::size_t k = i; k < j; ++k) {
      if (entries[k].positive) rank_sum += midrank;
    }
    i = j;
  }
  const auto p = static_cast<double>(positive_scores.size());
  const auto n = static_cast<double>(negative_scores.size());
  const double u = rank_sum - p * (p + 1.0) / 2.0;
  return u / (p * n);
}

std::vector<double> score_edges_cosine(
    const embed::Embedding& embedding,
    std::span<const std::pair<graph::VertexId, graph::VertexId>> pairs) {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    scores.push_back(embedding.cosine_similarity(u, v));
  }
  return scores;
}

std::vector<double> score_edges_common_neighbors(
    const graph::Graph& g,
    std::span<const std::pair<graph::VertexId, graph::VertexId>> pairs) {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  std::unordered_set<graph::VertexId> mark;
  for (const auto& [u, v] : pairs) {
    mark.clear();
    for (const auto x : g.neighbors(u)) mark.insert(x);
    std::size_t common = 0;
    for (const auto x : g.neighbors(v)) common += mark.count(x);
    scores.push_back(static_cast<double>(common));
  }
  return scores;
}

LinkPredictionResult evaluate_link_prediction(const graph::Graph& g,
                                              const V2VConfig& config,
                                              double test_fraction,
                                              std::uint64_t seed) {
  Rng rng(seed);
  const auto split = graph::split_edges_for_link_prediction(g, test_fraction, rng);
  const auto model = learn_embedding(split.train, config);

  LinkPredictionResult result;
  result.test_edges = split.test_positive.size();
  const auto pos_cos = score_edges_cosine(model.embedding, split.test_positive);
  const auto neg_cos = score_edges_cosine(model.embedding, split.test_negative);
  result.v2v_auc = roc_auc(pos_cos, neg_cos);

  const auto pos_cn = score_edges_common_neighbors(split.train, split.test_positive);
  const auto neg_cn = score_edges_common_neighbors(split.train, split.test_negative);
  result.common_neighbors_auc = roc_auc(pos_cn, neg_cn);
  return result;
}

}  // namespace v2v
