#include "v2v/embed/trainer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>

#include <string>

#include "v2v/common/aligned.hpp"
#include "v2v/common/kernels.hpp"
#include "v2v/common/numa.hpp"
#include "v2v/common/rng.hpp"
#include "v2v/common/thread_pool.hpp"
#include "v2v/common/timer.hpp"
#include "v2v/embed/huffman.hpp"
#include "v2v/embed/sigmoid_table.hpp"
#include "v2v/obs/metrics.hpp"
#include "v2v/walk/alias_table.hpp"

namespace v2v::embed {
namespace {

constexpr double kLossEps = 1e-7;  // clamp for -log terms

/// All shared state of one training run; worker threads hold a reference.
struct TrainerState {
  const TrainConfig& config;
  MatrixF syn0;      // input vectors == the embedding
  MatrixF syn1;      // output vectors (HS inner nodes or NS per-vertex)
  walk::AliasTable noise;           // NS noise distribution ~ freq^0.75
  HuffmanTree* huffman = nullptr;   // HS only
  std::vector<double> keep_probability;  // subsampling; empty = keep all
  std::atomic<std::uint64_t> tokens_processed{0};
  std::uint64_t planned_tokens = 0;
  std::size_t grain = 0;   // resolved work-queue chunk size (for metrics)
  std::size_t chunks = 0;  // chunks per epoch (for metrics)

  explicit TrainerState(const TrainConfig& cfg) : config(cfg) {}
};

/// Per-thread accumulators, merged after each epoch.
struct EpochShard {
  double loss = 0.0;
  std::uint64_t examples = 0;
};

// Hogwild note: `input` and `row` may be rows of the shared syn0/syn1
// matrices concurrently touched by other workers; the kernels tolerate
// that (SIMD on the fast paths, relaxed_load/relaxed_store scalar under
// TSan, see common/kernels.hpp).

/// One positive/negative pair update against output row `row`:
/// grad = (label - sigma(f)) * lr; accumulates into `input_grad` and
/// updates the output row in place. Returns the pair's loss contribution.
/// Precondition: `input` never aliases `row` (CBOW passes the private neu1
/// buffer; SkipGram passes a syn0 row while `row` is a syn1 row), so the
/// two axpy passes equal the classic interleaved element loop.
double pair_update(const float* input, float* row, float* input_grad, std::size_t d,
                   float label, float lr) {
  const float f = kernels::dot(input, row, d);
  const float sig = sigmoid_table()(f);
  const float g = (label - sig) * lr;
  kernels::axpy(g, row, input_grad, d);
  kernels::axpy(g, input, row, d);
  const double p = label > 0.5f ? sig : 1.0f - sig;
  return -std::log(std::max(static_cast<double>(p), kLossEps));
}

/// Trains the hidden->output layer for one target given the assembled
/// input vector; fills input_grad with the back-propagated gradient.
double train_target(TrainerState& state, const float* input, float* input_grad,
                    std::uint32_t target, float lr, Rng& rng) {
  const std::size_t d = state.config.dimensions;
  kernels::fill(input_grad, 0.0f, d);
  double loss = 0.0;
  if (state.config.objective == Objective::kNegativeSampling) {
    loss += pair_update(input, state.syn1.row(target).data(), input_grad, d, 1.0f, lr);
    for (std::size_t k = 0; k < state.config.negative; ++k) {
      auto sample = static_cast<std::uint32_t>(state.noise.sample(rng));
      if (sample == target) continue;  // word2vec skips collisions
      loss += pair_update(input, state.syn1.row(sample).data(), input_grad, d, 0.0f, lr);
    }
  } else {
    const HuffmanCode& code = state.huffman->code(target);
    for (std::size_t b = 0; b < code.code.size(); ++b) {
      // Huffman branch 0 is the "positive" direction, as in word2vec.
      const float label = code.code[b] == 0 ? 1.0f : 0.0f;
      loss += pair_update(input, state.syn1.row(code.points[b]).data(), input_grad, d,
                          label, lr);
    }
  }
  return loss;
}

float current_lr(const TrainerState& state) {
  const auto done = static_cast<double>(
      state.tokens_processed.load(std::memory_order_relaxed));
  const double frac = std::min(1.0, done / static_cast<double>(state.planned_tokens));
  const double lr = state.config.initial_lr * (1.0 - frac);
  return static_cast<float>(
      std::max(lr, state.config.initial_lr * state.config.min_lr_fraction));
}

/// Per-worker trainer: owns scratch buffers and the SGD inner loop for one
/// sentence (walk). Shared by the corpus-backed and streaming drivers.
class SentenceTrainer {
 public:
  SentenceTrainer(TrainerState& state, Rng rng)
      : state_(state),
        rng_(rng),
        neu1_(state.config.dimensions),
        grad_(state.config.dimensions),
        lr_(current_lr(state)) {}

  void train_sentence(std::span<const std::uint32_t> raw_walk) {
    const std::size_t d = state_.config.dimensions;
    const std::size_t window = state_.config.window;
    const bool cbow = state_.config.architecture == Architecture::kCbow;

    sentence_.clear();
    for (const auto token : raw_walk) {
      if (!state_.keep_probability.empty() &&
          rng_.next_double() >= state_.keep_probability[token]) {
        continue;
      }
      sentence_.push_back(token);
    }

    for (std::size_t pos = 0; pos < sentence_.size(); ++pos) {
      const std::uint32_t target = sentence_[pos];
      // word2vec's randomized effective window: uniform in [1, window].
      const std::size_t reduced = rng_.next_below(window);
      const std::size_t lo = pos > window - reduced ? pos - (window - reduced) : 0;
      const std::size_t hi = std::min(sentence_.size(), pos + (window - reduced) + 1);

      if (cbow) {
        kernels::fill(neu1_.data(), 0.0f, d);
        std::size_t context_count = 0;
        for (std::size_t c = lo; c < hi; ++c) {
          if (c == pos) continue;
          kernels::add(state_.syn0.row(sentence_[c]).data(), neu1_.data(), d);
          ++context_count;
        }
        if (context_count == 0) continue;
        kernels::scale(neu1_.data(), 1.0f / static_cast<float>(context_count), d);
        shard_.loss += train_target(state_, neu1_.data(), grad_.data(), target, lr_, rng_);
        ++shard_.examples;
        for (std::size_t c = lo; c < hi; ++c) {
          if (c == pos) continue;
          kernels::add(grad_.data(), state_.syn0.row(sentence_[c]).data(), d);
        }
      } else {
        for (std::size_t c = lo; c < hi; ++c) {
          if (c == pos) continue;
          auto row = state_.syn0.row(sentence_[c]);
          shard_.loss += train_target(state_, row.data(), grad_.data(), target, lr_, rng_);
          ++shard_.examples;
          kernels::add(grad_.data(), row.data(), d);
        }
      }
    }

    since_lr_update_ += raw_walk.size();
    if (since_lr_update_ >= 10000) {
      state_.tokens_processed.fetch_add(since_lr_update_, std::memory_order_relaxed);
      since_lr_update_ = 0;
      lr_ = current_lr(state_);
    }
  }

  /// Flushes the residual token count and returns the accumulated stats.
  [[nodiscard]] EpochShard finish() {
    state_.tokens_processed.fetch_add(since_lr_update_, std::memory_order_relaxed);
    since_lr_update_ = 0;
    return shard_;
  }

  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  TrainerState& state_;
  Rng rng_;
  AlignedVector<float> neu1_, grad_;  // 64-byte aligned SGD scratch
  std::vector<std::uint32_t> sentence_;
  EpochShard shard_;
  float lr_;
  std::uint64_t since_lr_update_ = 0;
};

void validate_config(const TrainConfig& config) {
  if (config.dimensions == 0) throw std::invalid_argument("train: dimensions == 0");
  if (config.window == 0) throw std::invalid_argument("train: window == 0");
  if (config.epochs == 0) throw std::invalid_argument("train: epochs == 0");
}

/// NUMA page placement for a freshly constructed (hence all-zero) shared
/// matrix: stripe its pages across the nodes before values are written,
/// so Hogwild's random row traffic spreads over every node's memory
/// controllers instead of hammering the allocating thread's node. Values
/// are untouched (zeroes stay zeroes) — results are bit-identical.
void place_shared_matrix(MatrixF& m) {
  numa::first_touch_stripes(m.data(), m.rows() * m.stride() * sizeof(float),
                            numa::system_topology());
}

void initialize_vectors(TrainerState& state, std::size_t vocab_size) {
  Rng init_rng(state.config.seed);
  state.syn0 = MatrixF(vocab_size, state.config.dimensions);
  place_shared_matrix(state.syn0);
  const float inv_dims = 1.0f / static_cast<float>(state.config.dimensions);
  for (std::size_t v = 0; v < vocab_size; ++v) {
    auto row = state.syn0.row(v);
    for (auto& x : row) x = init_rng.next_float() - 0.5f;
    kernels::scale(row.data(), inv_dims, row.size());
  }
}

/// Sets up the output layer and noise/Huffman structures from a frequency
/// profile (corpus counts, or a degree proxy for streaming). Returns the
/// HuffmanTree by value so its storage outlives the training loop.
std::unique_ptr<HuffmanTree> initialize_objective(
    TrainerState& state, std::span<const std::uint64_t> frequencies) {
  std::unique_ptr<HuffmanTree> huffman;
  if (state.config.objective == Objective::kHierarchicalSoftmax) {
    huffman = std::make_unique<HuffmanTree>(frequencies);
    state.huffman = huffman.get();
    state.syn1 = MatrixF(huffman->inner_count(), state.config.dimensions);
    place_shared_matrix(state.syn1);
  } else {
    state.syn1 = MatrixF(frequencies.size(), state.config.dimensions);
    place_shared_matrix(state.syn1);
    std::vector<double> noise_weights(frequencies.size());
    for (std::size_t v = 0; v < frequencies.size(); ++v) {
      noise_weights[v] =
          std::pow(static_cast<double>(std::max<std::uint64_t>(frequencies[v], 1)), 0.75);
    }
    state.noise = walk::AliasTable(noise_weights);
  }
  return huffman;
}

void initialize_subsampling(TrainerState& state,
                            std::span<const std::uint64_t> frequencies,
                            std::uint64_t total_tokens) {
  if (state.config.subsample <= 0.0 || total_tokens == 0) return;
  state.keep_probability.assign(frequencies.size(), 1.0);
  const auto total = static_cast<double>(total_tokens);
  for (std::size_t v = 0; v < frequencies.size(); ++v) {
    const double f = static_cast<double>(frequencies[v]) / total;
    if (f > state.config.subsample) {
      state.keep_probability[v] =
          std::sqrt(state.config.subsample / f) + state.config.subsample / f;
    }
  }
}

/// Shared epoch loop: `run_epoch(epoch)` must execute one full pass and
/// return the merged per-thread stats.
TrainResult run_training(TrainerState& state,
                         const std::function<EpochShard(std::size_t)>& run_epoch) {
  WallTimer timer;
  TrainResult result;
  double prev_loss = 0.0;
  const TrainConfig& config = state.config;
  obs::MetricsRegistry* metrics = config.metrics;
  const obs::ScopedTimer train_span(metrics, "train");

  if (metrics != nullptr) {
    metrics->gauge("train.grain").set(static_cast<double>(state.grain));
    metrics->gauge("train.chunks").set(static_cast<double>(state.chunks));
    metrics->counter(std::string("train.isa.") + kernels::active_isa_name()).add(1);
  }

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const obs::ScopedTimer epoch_span(metrics, "epoch");
    const std::uint64_t tokens_before =
        state.tokens_processed.load(std::memory_order_relaxed);
    const EpochShard totals = run_epoch(epoch);
    result.stats.examples += totals.examples;
    const double mean_loss =
        totals.examples > 0 ? totals.loss / static_cast<double>(totals.examples) : 0.0;
    result.stats.epoch_loss.push_back(mean_loss);
    result.stats.epochs_run = epoch + 1;

    if (metrics != nullptr) {
      const double epoch_seconds = epoch_span.seconds();
      const std::uint64_t epoch_tokens =
          state.tokens_processed.load(std::memory_order_relaxed) - tokens_before;
      metrics->counter("train.epochs").add(1);
      metrics->counter("train.examples").add(totals.examples);
      metrics->counter("train.tokens").add(epoch_tokens);
      metrics->histogram("train.epoch_seconds", {0.0, 120.0, 240}).record(epoch_seconds);
      metrics->series("train.epoch_loss").append(mean_loss);
      metrics->series("train.lr").append(current_lr(state));
      if (epoch_seconds > 0.0) {
        const double words_per_sec =
            static_cast<double>(epoch_tokens) / epoch_seconds;
        metrics->series("train.words_per_sec").append(words_per_sec);
        metrics->gauge("train.words_per_sec").set(words_per_sec);
      }
    }

    if (config.convergence_tol > 0.0 && epoch + 1 >= config.min_epochs && epoch > 0) {
      if (prev_loss - mean_loss < config.convergence_tol * prev_loss) {
        result.stats.converged_early = true;
        break;
      }
    }
    prev_loss = mean_loss;
  }

  result.stats.train_seconds = timer.seconds();
  if (metrics != nullptr) {
    metrics->gauge("train.lr.final").set(current_lr(state));
    metrics->gauge("train.seconds").set(result.stats.train_seconds);
    if (result.stats.train_seconds > 0.0) {
      metrics->gauge("train.words_per_sec.mean")
          .set(static_cast<double>(
                   state.tokens_processed.load(std::memory_order_relaxed)) /
               result.stats.train_seconds);
    }
  }
  if (config.capture_checkpoint) {
    // The caller fills frequencies and the walk-parameter echo; this is
    // the state only the training loop knows.
    TrainerCheckpoint ckpt;
    ckpt.last_lr = current_lr(state);
    ckpt.tokens_processed = state.tokens_processed.load(std::memory_order_relaxed);
    ckpt.planned_tokens = state.planned_tokens;
    ckpt.syn1 = std::move(state.syn1);
    ckpt.architecture = config.architecture;
    ckpt.objective = config.objective;
    ckpt.dimensions = config.dimensions;
    ckpt.window = config.window;
    ckpt.negative = config.negative;
    ckpt.initial_lr = config.initial_lr;
    ckpt.min_lr_fraction = config.min_lr_fraction;
    ckpt.subsample = config.subsample;
    ckpt.seed = config.seed;
    result.checkpoint = std::move(ckpt);
  }
  result.embedding = Embedding(std::move(state.syn0));
  return result;
}

/// Shared corpus-backed epoch driver: resolves the work-queue geometry
/// and runs the chunk-indexed-RNG epoch loop (results depend only on
/// (seed, grain), not on which worker claims which chunk). Used by both
/// the cold-start and warm-start entry points, for RAM-resident and
/// spooled corpora alike — the chunk geometry is a pure function of
/// walk_count, so the two backings train bit-identically. Chunks are
/// handed out through the node-preferring NUMA queue (a no-op schedule on
/// single-node hosts), which changes claiming order only, never results.
TrainResult run_corpus_training(TrainerState& state,
                                const walk::CorpusReader& corpus) {
  const TrainConfig& config = state.config;
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  const std::size_t grain =
      config.grain != 0 ? config.grain : default_grain(corpus.walk_count(), threads);
  const std::size_t chunks = chunk_count(corpus.walk_count(), grain);
  state.grain = grain;
  state.chunks = chunks;
  const Rng root(config.seed ^ 0xd1b54a32d192ed03ULL);
  const NumaSchedule numa_schedule = numa::schedule();

  return run_training(state, [&](std::size_t epoch) {
    std::vector<EpochShard> shards(chunks);
    parallel_for_dynamic(
        threads, corpus.walk_count(), grain, numa_schedule,
        [&](std::size_t /*worker*/, std::size_t chunk, std::size_t begin,
            std::size_t end) {
          // Kick off readahead for the whole chunk before the SGD loop
          // starts faulting token pages one walk at a time (no-op for the
          // in-RAM backing).
          corpus.prefetch(begin, end);
          SentenceTrainer trainer(state, root.fork(epoch * chunks + chunk));
          for (std::size_t w = begin; w < end; ++w) {
            trainer.train_sentence(corpus.walk(w));
          }
          shards[chunk] = trainer.finish();
        });
    EpochShard totals;
    for (const auto& shard : shards) {
      totals.loss += shard.loss;
      totals.examples += shard.examples;
    }
    return totals;
  });
}

}  // namespace

TrainResult train_embedding(const walk::Corpus& corpus, std::size_t vocab_size,
                            const TrainConfig& config) {
  const walk::InMemoryCorpus reader(corpus);
  return train_embedding(static_cast<const walk::CorpusReader&>(reader),
                         vocab_size, config);
}

TrainResult train_embedding(const walk::CorpusReader& corpus,
                            std::size_t vocab_size, const TrainConfig& config) {
  validate_config(config);
  if (vocab_size == 0) throw std::invalid_argument("train: empty vocabulary");
  if (corpus.token_count() > 0 && corpus.max_token() >= vocab_size) {
    throw std::invalid_argument("train: token out of vocabulary");
  }

  TrainerState state(config);
  state.planned_tokens =
      std::max<std::uint64_t>(1, config.epochs * corpus.token_count());
  initialize_vectors(state, vocab_size);
  const auto frequencies = corpus.vertex_frequencies(vocab_size);
  const auto huffman =
      initialize_objective(state, std::span<const std::uint64_t>(frequencies));
  initialize_subsampling(state, std::span<const std::uint64_t>(frequencies),
                         corpus.token_count());

  TrainResult result = run_corpus_training(state, corpus);
  if (result.checkpoint) result.checkpoint->frequencies = frequencies;
  return result;
}

TrainResult train_embedding_resume(const walk::Corpus& corpus,
                                   const Embedding& warm_start,
                                   const TrainerCheckpoint& checkpoint,
                                   const TrainConfig& config) {
  const walk::InMemoryCorpus reader(corpus);
  return train_embedding_resume(static_cast<const walk::CorpusReader&>(reader),
                                warm_start, checkpoint, config);
}

TrainResult train_embedding_resume(const walk::CorpusReader& corpus,
                                   const Embedding& warm_start,
                                   const TrainerCheckpoint& checkpoint,
                                   const TrainConfig& config) {
  validate_config(config);
  if (config.dimensions != checkpoint.dimensions) {
    throw std::invalid_argument("resume: config/checkpoint dimensions disagree");
  }
  if (warm_start.dimensions() != config.dimensions) {
    throw std::invalid_argument("resume: warm-start dimensions disagree");
  }
  if (config.architecture != checkpoint.architecture ||
      config.objective != checkpoint.objective) {
    throw std::invalid_argument(
        "resume: architecture/objective differ from the checkpoint");
  }
  std::size_t vocab_size = warm_start.vertex_count();
  if (corpus.token_count() > 0) {
    vocab_size = std::max<std::size_t>(
        vocab_size, static_cast<std::size_t>(corpus.max_token()) + 1);
  }
  if (vocab_size == 0) throw std::invalid_argument("resume: empty vocabulary");

  TrainerState state(config);
  state.planned_tokens =
      std::max<std::uint64_t>(1, config.epochs * corpus.token_count());

  // syn0: warm rows verbatim, new vertices get the usual small random
  // init from a per-row stream, so the result is independent of how many
  // refreshes it took to reach this vocabulary.
  const std::size_t d = config.dimensions;
  state.syn0 = MatrixF(vocab_size, d);
  place_shared_matrix(state.syn0);
  for (std::size_t v = 0; v < warm_start.vertex_count(); ++v) {
    const auto src = warm_start.vector(v);
    auto dst = state.syn0.row(v);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  const Rng init_root(config.seed ^ 0xa0761d6478bd642fULL);
  const float inv_dims = 1.0f / static_cast<float>(d);
  for (std::size_t v = warm_start.vertex_count(); v < vocab_size; ++v) {
    Rng row_rng = init_root.fork(v);
    auto row = state.syn0.row(v);
    for (auto& x : row) x = row_rng.next_float() - 0.5f;
    kernels::scale(row.data(), inv_dims, row.size());
  }

  const auto new_frequencies = corpus.vertex_frequencies(vocab_size);
  std::unique_ptr<HuffmanTree> huffman;
  if (config.objective == Objective::kHierarchicalSoftmax) {
    // syn1 rows are tied to Huffman tree topology, which is a pure
    // function of the stored frequency profile — so the tree must be
    // rebuilt from the checkpoint, and the vocabulary cannot grow.
    if (vocab_size > checkpoint.frequencies.size()) {
      throw std::invalid_argument(
          "resume: vocabulary grew under hierarchical softmax");
    }
    huffman = std::make_unique<HuffmanTree>(
        std::span<const std::uint64_t>(checkpoint.frequencies));
    state.huffman = huffman.get();
    if (checkpoint.syn1.rows() != huffman->inner_count() ||
        checkpoint.syn1.cols() != d) {
      throw std::invalid_argument("resume: checkpoint syn1 shape mismatch");
    }
    state.syn1 = checkpoint.syn1;
  } else {
    if (checkpoint.syn1.cols() != d || checkpoint.syn1.rows() > vocab_size) {
      throw std::invalid_argument("resume: checkpoint syn1 shape mismatch");
    }
    // Warm output rows verbatim; new vertices start at zero (the word2vec
    // convention for fresh output vectors). The noise distribution is
    // recomputed from the NEW corpus so sampling tracks current structure.
    state.syn1 = MatrixF(vocab_size, d);
    place_shared_matrix(state.syn1);
    for (std::size_t v = 0; v < checkpoint.syn1.rows(); ++v) {
      const auto src = checkpoint.syn1.row(v);
      auto dst = state.syn1.row(v);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    std::vector<double> noise_weights(vocab_size);
    for (std::size_t v = 0; v < vocab_size; ++v) {
      noise_weights[v] = std::pow(
          static_cast<double>(std::max<std::uint64_t>(new_frequencies[v], 1)), 0.75);
    }
    state.noise = walk::AliasTable(noise_weights);
  }
  initialize_subsampling(state, std::span<const std::uint64_t>(new_frequencies),
                         corpus.token_count());

  TrainResult result = run_corpus_training(state, corpus);
  if (result.checkpoint) {
    result.checkpoint->frequencies =
        config.objective == Objective::kHierarchicalSoftmax
            ? checkpoint.frequencies
            : new_frequencies;
    result.checkpoint->tokens_processed += checkpoint.tokens_processed;
    result.checkpoint->walks_per_vertex = checkpoint.walks_per_vertex;
    result.checkpoint->walk_length = checkpoint.walk_length;
    result.checkpoint->walk_seed = checkpoint.walk_seed;
    result.checkpoint->refresh_rounds = checkpoint.refresh_rounds + 1;
  }
  return result;
}

TrainResult train_embedding_streaming(const graph::Graph& g,
                                      const walk::WalkConfig& walk_config,
                                      const TrainConfig& config) {
  validate_config(config);
  const std::size_t vocab_size = g.vertex_count();
  if (vocab_size == 0) throw std::invalid_argument("train: empty graph");

  TrainerState state(config);
  state.planned_tokens = std::max<std::uint64_t>(
      1, config.epochs * vocab_size * walk_config.walks_per_vertex *
             walk_config.walk_length);
  initialize_vectors(state, vocab_size);

  // Visit-frequency proxy: weighted out-degree + 1 (exact stationary
  // distribution for uniform walks on connected undirected graphs).
  std::vector<std::uint64_t> frequencies(vocab_size);
  std::uint64_t total_proxy = 0;
  for (graph::VertexId v = 0; v < vocab_size; ++v) {
    frequencies[v] = static_cast<std::uint64_t>(
                         std::llround(g.weighted_out_degree(v) * 16.0)) + 1;
    total_proxy += frequencies[v];
  }
  const auto huffman =
      initialize_objective(state, std::span<const std::uint64_t>(frequencies));
  initialize_subsampling(state, std::span<const std::uint64_t>(frequencies),
                         total_proxy);

  const walk::Walker walker(g, walk_config);
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  const std::size_t grain =
      config.grain != 0 ? config.grain : default_grain(vocab_size, threads);
  const std::size_t chunks = chunk_count(vocab_size, grain);
  state.grain = grain;
  state.chunks = chunks;
  const Rng root(config.seed ^ 0xd1b54a32d192ed03ULL);
  const Rng walk_root(config.seed ^ 0x94d049bb133111ebULL);
  const NumaSchedule numa_schedule = numa::schedule();

  TrainResult result = run_training(state, [&](std::size_t epoch) {
    std::vector<EpochShard> shards(chunks);
    parallel_for_dynamic(
        threads, vocab_size, grain, numa_schedule,
        [&](std::size_t /*worker*/, std::size_t chunk, std::size_t begin,
            std::size_t end) {
          SentenceTrainer trainer(state, root.fork(epoch * chunks + chunk));
          std::vector<graph::VertexId> buffer;
          buffer.reserve(walk_config.walk_length);
          for (std::size_t v = begin; v < end; ++v) {
            // Fresh walks every epoch, deterministic per (seed, epoch, v).
            Rng walk_rng = walk_root.fork(epoch * vocab_size + v);
            for (std::size_t w = 0; w < walk_config.walks_per_vertex; ++w) {
              walker.walk_from(static_cast<graph::VertexId>(v), walk_rng, buffer);
              trainer.train_sentence(buffer);
            }
          }
          shards[chunk] = trainer.finish();
        });
    EpochShard totals;
    for (const auto& shard : shards) {
      totals.loss += shard.loss;
      totals.examples += shard.examples;
    }
    return totals;
  });
  if (result.checkpoint) result.checkpoint->frequencies = frequencies;
  return result;
}

}  // namespace v2v::embed
