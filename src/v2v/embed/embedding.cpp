#include "v2v/embed/embedding.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "v2v/common/vec_math.hpp"

namespace v2v::embed {

double Embedding::cosine_similarity(std::size_t a, std::size_t b) const {
  return 1.0 - cosine_distance(vector(a), vector(b));
}

Embedding Embedding::normalized() const {
  Embedding copy(*this);
  for (std::size_t v = 0; v < copy.vertex_count(); ++v) {
    normalize(copy.vector(v));
  }
  return copy;
}

void Embedding::save_text(std::ostream& out) const {
  // max_digits10 digits reproduce every float exactly on read-back, so
  // save -> load -> save is idempotent (the old default 6 digits lost the
  // low bits of most mantissas).
  const auto old_precision =
      out.precision(std::numeric_limits<float>::max_digits10);
  out << vertex_count() << ' ' << dimensions() << '\n';
  for (std::size_t v = 0; v < vertex_count(); ++v) {
    out << v;
    for (const float x : vector(v)) out << ' ' << x;
    out << '\n';
  }
  out.precision(old_precision);
}

void Embedding::save_text_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Embedding: cannot open " + path);
  save_text(out);
}

Embedding Embedding::load_text(std::istream& in) {
  std::size_t n = 0, d = 0;
  if (!(in >> n >> d)) throw std::runtime_error("Embedding: bad header");
  Embedding out(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t id = 0;
    if (!(in >> id) || id >= n) throw std::runtime_error("Embedding: bad row id");
    for (std::size_t c = 0; c < d; ++c) {
      if (!(in >> out.vectors_(id, c))) throw std::runtime_error("Embedding: truncated row");
    }
  }
  return out;
}

Embedding Embedding::load_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Embedding: cannot open " + path);
  return load_text(in);
}

namespace {
constexpr char kMagic[8] = {'V', '2', 'V', 'E', 'M', 'B', '0', '1'};
}

void Embedding::save_binary_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("Embedding: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t n = vertex_count(), d = dimensions();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  // The on-disk payload is dense n*d floats; in-memory rows are
  // stride-padded, so write row by row.
  for (std::size_t v = 0; v < vertex_count(); ++v) {
    const auto r = vector(v);
    out.write(reinterpret_cast<const char*>(r.data()),
              static_cast<std::streamsize>(d * sizeof(float)));
  }
}

Embedding Embedding::load_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Embedding: cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("Embedding: bad magic in " + path);
  }
  std::uint64_t n = 0, d = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&d), sizeof(d));
  if (!in) throw std::runtime_error("Embedding: truncated header in " + path);
  Embedding out(n, d);
  for (std::uint64_t v = 0; v < n; ++v) {
    const auto r = out.vectors_.row(v);
    in.read(reinterpret_cast<char*>(r.data()),
            static_cast<std::streamsize>(d * sizeof(float)));
  }
  if (!in) throw std::runtime_error("Embedding: truncated data in " + path);
  return out;
}

}  // namespace v2v::embed
