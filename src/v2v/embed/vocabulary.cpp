#include "v2v/embed/vocabulary.hpp"

#include <algorithm>
#include <numeric>

namespace v2v::embed {

Vocabulary::Vocabulary(const walk::Corpus& corpus, std::uint64_t min_count) {
  // Count over the dense external range [0, max_token].
  std::uint32_t max_token = 0;
  for (const auto token : corpus.tokens()) max_token = std::max(max_token, token);
  const std::size_t range = corpus.token_count() == 0 ? 0 : max_token + 1;
  const auto counts = corpus.vertex_frequencies(range);

  std::vector<std::uint32_t> kept;
  for (std::uint32_t ext = 0; ext < range; ++ext) {
    if (counts[ext] >= min_count && counts[ext] > 0) kept.push_back(ext);
  }
  std::sort(kept.begin(), kept.end(), [&](std::uint32_t a, std::uint32_t b) {
    return counts[a] > counts[b] || (counts[a] == counts[b] && a < b);
  });

  external_ = std::move(kept);
  frequency_.reserve(external_.size());
  internal_of_.assign(range, 0);
  for (std::uint32_t internal = 0; internal < external_.size(); ++internal) {
    const std::uint32_t ext = external_[internal];
    frequency_.push_back(counts[ext]);
    internal_of_[ext] = internal + 1;
    total_tokens_ += counts[ext];
  }
}

std::optional<std::uint32_t> Vocabulary::to_internal(std::uint32_t external) const {
  if (external >= internal_of_.size() || internal_of_[external] == 0) {
    return std::nullopt;
  }
  return internal_of_[external] - 1;
}

walk::Corpus Vocabulary::remap(const walk::Corpus& corpus) const {
  walk::Corpus out;
  out.reserve(corpus.walk_count(), corpus.token_count());
  std::vector<graph::VertexId> buffer;
  for (std::size_t w = 0; w < corpus.walk_count(); ++w) {
    buffer.clear();
    for (const auto token : corpus.walk(w)) {
      if (const auto internal = to_internal(token)) buffer.push_back(*internal);
    }
    out.add_walk(buffer);
  }
  return out;
}

}  // namespace v2v::embed
