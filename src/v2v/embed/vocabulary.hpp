// Vocabulary over vertex ids: compacts a (possibly sparse) id space to a
// dense training id range and applies word2vec-style min-count filtering.
// On a plain graph every vertex is its own vocabulary entry and this layer
// is the identity; it matters when embedding corpora whose token space is
// sparse (e.g. walks imported from logs, the "computer network request
// paths" motivating example of paper §II).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "v2v/walk/corpus.hpp"

namespace v2v::embed {

class Vocabulary {
 public:
  /// Builds from corpus token counts; tokens occurring fewer than
  /// `min_count` times are dropped. Internal ids are assigned by
  /// descending frequency (ties by external id) like word2vec.
  Vocabulary(const walk::Corpus& corpus, std::uint64_t min_count = 1);

  [[nodiscard]] std::size_t size() const noexcept { return external_.size(); }

  /// Internal id for an external token, or nullopt if filtered/unknown.
  [[nodiscard]] std::optional<std::uint32_t> to_internal(std::uint32_t external) const;

  /// External token for an internal id.
  [[nodiscard]] std::uint32_t to_external(std::uint32_t internal) const {
    return external_[internal];
  }

  /// Occurrence count of an internal id in the source corpus.
  [[nodiscard]] std::uint64_t frequency(std::uint32_t internal) const {
    return frequency_[internal];
  }

  [[nodiscard]] std::uint64_t total_tokens() const noexcept { return total_tokens_; }

  /// Rewrites a corpus into internal ids, dropping filtered tokens.
  [[nodiscard]] walk::Corpus remap(const walk::Corpus& corpus) const;

 private:
  std::vector<std::uint32_t> external_;          // internal -> external
  std::vector<std::uint64_t> frequency_;         // internal -> count
  std::vector<std::uint32_t> internal_of_;       // external -> internal + 1 (0 = none)
  std::uint64_t total_tokens_ = 0;
};

}  // namespace v2v::embed
