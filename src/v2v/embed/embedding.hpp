// The product of V2V training: one dense vector per vertex.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "v2v/common/matrix.hpp"

namespace v2v::embed {

class Embedding {
 public:
  Embedding() = default;
  Embedding(std::size_t vertices, std::size_t dimensions)
      : vectors_(vertices, dimensions) {}
  explicit Embedding(MatrixF vectors) : vectors_(std::move(vectors)) {}

  [[nodiscard]] std::size_t vertex_count() const noexcept { return vectors_.rows(); }
  [[nodiscard]] std::size_t dimensions() const noexcept { return vectors_.cols(); }

  [[nodiscard]] std::span<const float> vector(std::size_t v) const noexcept {
    return vectors_.row(v);
  }
  [[nodiscard]] std::span<float> vector(std::size_t v) noexcept { return vectors_.row(v); }

  [[nodiscard]] const MatrixF& matrix() const noexcept { return vectors_; }
  [[nodiscard]] MatrixF& matrix() noexcept { return vectors_; }

  /// Cosine similarity between two vertex vectors (0 for zero vectors).
  [[nodiscard]] double cosine_similarity(std::size_t a, std::size_t b) const;

  // Similarity search (nearest / analogy queries) lives in the index
  // layer: see v2v/index/embedding_queries.hpp and v2v/index/flat_index.hpp.

  /// Returns a copy with every row L2-normalized.
  [[nodiscard]] Embedding normalized() const;

  /// word2vec text format: header "n d", then one "id x1 ... xd" per row.
  /// Floats are written with max_digits10 significant digits, so
  /// save -> load -> save round-trips bitwise.
  void save_text(std::ostream& out) const;
  void save_text_file(const std::string& path) const;
  [[nodiscard]] static Embedding load_text(std::istream& in);
  [[nodiscard]] static Embedding load_text_file(const std::string& path);

  /// Compact binary format (magic + dims + raw floats).
  void save_binary_file(const std::string& path) const;
  [[nodiscard]] static Embedding load_binary_file(const std::string& path);

 private:
  MatrixF vectors_;
};

}  // namespace v2v::embed
