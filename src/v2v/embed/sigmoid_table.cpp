#include "v2v/embed/sigmoid_table.hpp"

namespace v2v::embed {

const SigmoidTable& sigmoid_table() {
  static const SigmoidTable table;
  return table;
}

}  // namespace v2v::embed
