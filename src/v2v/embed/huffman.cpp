#include "v2v/embed/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "v2v/common/check.hpp"

namespace v2v::embed {

HuffmanTree::HuffmanTree(std::span<const std::uint64_t> frequencies) {
  const std::size_t vocab = frequencies.size();
  if (vocab == 0) throw std::invalid_argument("HuffmanTree: empty vocabulary");
  codes_.resize(vocab);
  if (vocab == 1) {
    // Degenerate tree: a single leaf needs one decision node so training
    // has something to update; give it the code "0" through node 0.
    inner_count_ = 1;
    codes_[0].points = {0};
    codes_[0].code = {0};
    return;
  }
  inner_count_ = vocab - 1;

  // Sort symbols by descending frequency (ties by id for determinism).
  std::vector<std::uint32_t> order(vocab);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const std::uint64_t fa = std::max<std::uint64_t>(frequencies[a], 1);
    const std::uint64_t fb = std::max<std::uint64_t>(frequencies[b], 1);
    return fa > fb || (fa == fb && a < b);
  });

  // count[] holds leaves (ascending when traversed from the back) followed
  // by merged inner nodes; the classic two-pointer merge.
  const std::size_t total = 2 * vocab - 1;
  std::vector<std::uint64_t> count(total, 0);
  std::vector<std::uint32_t> parent(total, 0);
  std::vector<std::uint8_t> branch(total, 0);
  for (std::size_t i = 0; i < vocab; ++i) {
    count[i] = std::max<std::uint64_t>(frequencies[order[vocab - 1 - i]], 1);
  }
  // count[0..vocab) is ascending; inner nodes appended are ascending too.
  std::size_t leaf = 0;        // next unmerged leaf
  std::size_t inner = vocab;   // next unmerged inner node
  for (std::size_t made = vocab; made < total; ++made) {
    auto take_min = [&]() -> std::size_t {
      if (leaf < vocab && (inner >= made || count[leaf] <= count[inner])) return leaf++;
      return inner++;
    };
    const std::size_t a = take_min();
    const std::size_t b = take_min();
    count[made] = count[a] + count[b];
    parent[a] = static_cast<std::uint32_t>(made);
    parent[b] = static_cast<std::uint32_t>(made);
    branch[b] = 1;
  }

  // Walk each leaf to the root collecting its code, then reverse.
  for (std::size_t i = 0; i < vocab; ++i) {
    const std::uint32_t symbol = order[vocab - 1 - i];
    HuffmanCode& hc = codes_[symbol];
    std::size_t node = i;
    while (node != total - 1) {
      hc.code.push_back(branch[node]);
      node = parent[node];
      hc.points.push_back(static_cast<std::uint32_t>(node - vocab));
    }
    std::reverse(hc.code.begin(), hc.code.end());
    std::reverse(hc.points.begin(), hc.points.end());
  }
}

double HuffmanTree::mean_code_length(std::span<const std::uint64_t> frequencies) const {
  V2V_CHECK(frequencies.size() == codes_.size(),
            "mean_code_length: frequency vector size != vocab size");
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t s = 0; s < codes_.size(); ++s) {
    const auto f = static_cast<double>(std::max<std::uint64_t>(frequencies[s], 1));
    weighted += f * static_cast<double>(codes_[s].code.size());
    total += f;
  }
  return total > 0 ? weighted / total : 0.0;
}

}  // namespace v2v::embed
