// word2vec-style SGD trainer adapted to vertex sequences (paper §II-B).
//
// The paper uses CBOW with window n = 5; SkipGram is included because the
// DeepWalk baseline uses it and the ablation bench compares the two. Both
// objectives from word2vec are available: negative sampling (default,
// noise distribution ~ frequency^(3/4)) and hierarchical softmax (Huffman
// tree over visit frequencies).
//
// Training runs Hogwild-style: worker threads update the shared weight
// matrices without locks, which is the standard word2vec recipe. With one
// thread, training is fully deterministic for a fixed seed.
//
// Early stopping reproduces the paper's Fig 7 behaviour (training time
// decreases as community structure strengthens): when the relative
// improvement of the mean epoch loss drops below `convergence_tol`,
// training stops before `epochs`.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "v2v/embed/embedding.hpp"
#include "v2v/walk/corpus.hpp"
#include "v2v/walk/corpus_reader.hpp"
#include "v2v/walk/walker.hpp"

namespace v2v::obs {
class MetricsRegistry;
}  // namespace v2v::obs

namespace v2v::embed {

enum class Architecture : std::uint8_t { kCbow, kSkipGram };
enum class Objective : std::uint8_t { kNegativeSampling, kHierarchicalSoftmax };

struct TrainConfig {
  /// Embedding width d (dimensions; paper sweeps 20–1000, default 100).
  std::size_t dimensions = 100;
  /// Context window n: vertices considered on each side of the target
  /// (count; paper default n = 5).
  std::size_t window = 5;
  /// CBOW (paper §II-B default) or SkipGram (DeepWalk baseline).
  Architecture architecture = Architecture::kCbow;
  /// Negative sampling (word2vec default) or hierarchical softmax.
  Objective objective = Objective::kNegativeSampling;
  /// Negative samples drawn per positive target (count; word2vec
  /// default 5). Ignored under hierarchical softmax.
  std::size_t negative = 5;
  /// Maximum passes over the corpus (count; default 5).
  std::size_t epochs = 5;
  /// Passes guaranteed before early stopping may trigger (count).
  std::size_t min_epochs = 1;
  /// Stop when (prev_loss - loss) < convergence_tol * prev_loss
  /// (dimensionless relative improvement; 0 disables early stopping).
  double convergence_tol = 0.0;
  /// Starting SGD step size (dimensionless; word2vec CBOW default 0.05),
  /// decayed linearly over the planned token budget.
  double initial_lr = 0.05;
  /// Learning-rate floor as a fraction of initial_lr (dimensionless).
  double min_lr_fraction = 1e-4;
  /// Frequent-vertex subsampling threshold (corpus frequency fraction,
  /// word2vec "-sample"); 0 = keep every occurrence (default).
  double subsample = 0.0;
  /// Hogwild worker threads (count; 1 = deterministic for a fixed seed).
  std::size_t threads = 1;
  /// Sentences (walks) per dynamic work-queue chunk; 0 (default) picks
  /// default_grain(walk_count, threads). Chunk boundaries — and hence the
  /// per-chunk RNG streams — depend only on this value, so results for a
  /// fixed (seed, grain) are reproducible regardless of scheduling (exact
  /// with 1 thread; Hogwild-racy above).
  std::size_t grain = 0;
  /// Seed for init, sampling, and shuffling (64-bit; default 1).
  std::uint64_t seed = 1;
  /// Optional observability sink: training records words/sec per epoch,
  /// the learning-rate and loss trajectories, epoch wall-time histograms,
  /// and a "train" > "epoch" stage span tree into it. Null (default)
  /// disables instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
  /// When set, TrainResult::checkpoint carries the optimizer state needed
  /// to continue SGD later (see TrainerCheckpoint). Off by default: the
  /// checkpoint owns a second vocab x dims matrix.
  bool capture_checkpoint = false;
};

/// Everything besides the embedding itself (syn0) that continued SGD
/// needs: the output layer, the frequency profile the objective was
/// built from, and learning-rate bookkeeping. Serialized by
/// store/trainer_state.hpp as optional snapshot-v3 sections; consumed by
/// train_embedding_resume() and the dynamic-refresh pipeline.
struct TrainerCheckpoint {
  MatrixF syn1;  ///< output vectors (HS inner nodes or NS per-vertex)
  /// Frequency profile the objective was initialized from. Under
  /// hierarchical softmax this is load-bearing: resuming rebuilds the
  /// *identical* Huffman tree from it (syn1 rows are tied to tree
  /// topology). Under negative sampling it is informational — resume
  /// recomputes the noise distribution from the new corpus.
  std::vector<std::uint64_t> frequencies;
  std::uint64_t tokens_processed = 0;  ///< cumulative across all runs
  std::uint64_t planned_tokens = 0;    ///< last run's schedule denominator
  double last_lr = 0.0;                ///< decayed lr at the end of the last run
  /// Echo of the producing TrainConfig, so a refresh tool can rebuild a
  /// compatible config from the snapshot alone.
  Architecture architecture = Architecture::kCbow;
  Objective objective = Objective::kNegativeSampling;
  std::uint64_t dimensions = 0;
  std::uint64_t window = 0;
  std::uint64_t negative = 0;
  double initial_lr = 0.0;
  double min_lr_fraction = 0.0;
  double subsample = 0.0;
  std::uint64_t seed = 0;  ///< trainer seed of the producing run
  /// Walk parameters of the corpus the embedding was trained on (filled
  /// by learn_embedding / the refresh driver, 0 = unknown). walk_seed is
  /// the seed generate_corpus ran with — replaying it reproduces the old
  /// corpus for incremental invalidation.
  std::uint64_t walks_per_vertex = 0;
  std::uint64_t walk_length = 0;
  std::uint64_t walk_seed = 0;
  std::uint64_t refresh_rounds = 0;  ///< continued-SGD refreshes so far
};

struct TrainStats {
  std::size_t epochs_run = 0;       ///< passes actually executed (count)
  std::vector<double> epoch_loss;   ///< mean loss per training example, one per epoch
  double train_seconds = 0.0;       ///< SGD wall time, excludes corpus generation (s)
  std::uint64_t examples = 0;       ///< total (context, target) updates (count)
  bool converged_early = false;     ///< true if the loss-plateau rule stopped training
};

struct TrainResult {
  Embedding embedding;
  TrainStats stats;
  /// Present iff TrainConfig::capture_checkpoint was set.
  std::optional<TrainerCheckpoint> checkpoint;
};

/// Trains vertex embeddings from a walk corpus. `vocab_size` must be at
/// least max(token)+1; vertices that never appear in the corpus keep their
/// small random initial vectors.
[[nodiscard]] TrainResult train_embedding(const walk::Corpus& corpus,
                                          std::size_t vocab_size,
                                          const TrainConfig& config);

/// Backing-agnostic variant: trains from any CorpusReader — the RAM
/// corpus via walk::InMemoryCorpus or a disk spool via
/// walk::SpooledCorpus. Chunk geometry and RNG streams depend only on
/// (walk_count, seed, grain), so a fixed-seed run produces bit-identical
/// results whichever backing serves the walks (exact with 1 thread;
/// Hogwild-racy above).
[[nodiscard]] TrainResult train_embedding(const walk::CorpusReader& corpus,
                                          std::size_t vocab_size,
                                          const TrainConfig& config);

/// Continues SGD from a previous run's embedding + checkpoint on a (new)
/// corpus — the warm-start path of the dynamic-refresh pipeline. The
/// vocabulary may grow (new vertices get fresh deterministic init rows
/// and, under negative sampling, zero output rows); under hierarchical
/// softmax growth throws (the Huffman tree shape is fixed by the stored
/// frequency profile). `config` must agree with the checkpoint on
/// dimensions/architecture/objective; its learning-rate fields define a
/// fresh linear decay over this run's token budget (callers typically
/// set initial_lr = checkpoint.last_lr to continue the decayed schedule).
/// The returned checkpoint (when captured) accumulates tokens_processed
/// and refresh_rounds across runs.
[[nodiscard]] TrainResult train_embedding_resume(const walk::Corpus& corpus,
                                                 const Embedding& warm_start,
                                                 const TrainerCheckpoint& checkpoint,
                                                 const TrainConfig& config);

/// Backing-agnostic warm-start variant (see the CorpusReader overload of
/// train_embedding).
[[nodiscard]] TrainResult train_embedding_resume(const walk::CorpusReader& corpus,
                                                 const Embedding& warm_start,
                                                 const TrainerCheckpoint& checkpoint,
                                                 const TrainConfig& config);

/// Streaming variant: generates walks on the fly and trains on each walk
/// immediately, never materializing the corpus. At the paper's full scale
/// (t = l = 1000 on 1000 vertices) the corpus is ~10^9 tokens, far beyond
/// memory; this path trains in O(vocab x dims) space instead. Fresh walks
/// are drawn every epoch (a mild regularizer vs. the materialized path).
/// The negative-sampling noise distribution and the Huffman tree use the
/// weighted out-degree as the visit-frequency proxy — exact for uniform
/// walks on undirected graphs (stationary distribution ~ degree) and a
/// close approximation otherwise.
[[nodiscard]] TrainResult train_embedding_streaming(const graph::Graph& g,
                                                    const walk::WalkConfig& walk_config,
                                                    const TrainConfig& config);

}  // namespace v2v::embed
