// word2vec-style SGD trainer adapted to vertex sequences (paper §II-B).
//
// The paper uses CBOW with window n = 5; SkipGram is included because the
// DeepWalk baseline uses it and the ablation bench compares the two. Both
// objectives from word2vec are available: negative sampling (default,
// noise distribution ~ frequency^(3/4)) and hierarchical softmax (Huffman
// tree over visit frequencies).
//
// Training runs Hogwild-style: worker threads update the shared weight
// matrices without locks, which is the standard word2vec recipe. With one
// thread, training is fully deterministic for a fixed seed.
//
// Early stopping reproduces the paper's Fig 7 behaviour (training time
// decreases as community structure strengthens): when the relative
// improvement of the mean epoch loss drops below `convergence_tol`,
// training stops before `epochs`.
#pragma once

#include <cstdint>
#include <vector>

#include "v2v/embed/embedding.hpp"
#include "v2v/walk/corpus.hpp"
#include "v2v/walk/walker.hpp"

namespace v2v::embed {

enum class Architecture : std::uint8_t { kCbow, kSkipGram };
enum class Objective : std::uint8_t { kNegativeSampling, kHierarchicalSoftmax };

struct TrainConfig {
  std::size_t dimensions = 100;
  std::size_t window = 5;                 ///< paper default n = 5
  Architecture architecture = Architecture::kCbow;
  Objective objective = Objective::kNegativeSampling;
  std::size_t negative = 5;               ///< negative samples per target
  std::size_t epochs = 5;                 ///< maximum passes over the corpus
  std::size_t min_epochs = 1;
  /// Stop when (prev_loss - loss) < convergence_tol * prev_loss.
  /// 0 disables early stopping.
  double convergence_tol = 0.0;
  double initial_lr = 0.05;               ///< word2vec CBOW default
  double min_lr_fraction = 1e-4;          ///< floor as a fraction of initial_lr
  /// Frequent-vertex subsampling threshold (word2vec "-sample"); 0 = off.
  double subsample = 0.0;
  std::size_t threads = 1;
  std::uint64_t seed = 1;
};

struct TrainStats {
  std::size_t epochs_run = 0;
  std::vector<double> epoch_loss;   ///< mean loss per training example
  double train_seconds = 0.0;
  std::uint64_t examples = 0;       ///< total (context, target) updates
  bool converged_early = false;
};

struct TrainResult {
  Embedding embedding;
  TrainStats stats;
};

/// Trains vertex embeddings from a walk corpus. `vocab_size` must be at
/// least max(token)+1; vertices that never appear in the corpus keep their
/// small random initial vectors.
[[nodiscard]] TrainResult train_embedding(const walk::Corpus& corpus,
                                          std::size_t vocab_size,
                                          const TrainConfig& config);

/// Streaming variant: generates walks on the fly and trains on each walk
/// immediately, never materializing the corpus. At the paper's full scale
/// (t = l = 1000 on 1000 vertices) the corpus is ~10^9 tokens, far beyond
/// memory; this path trains in O(vocab x dims) space instead. Fresh walks
/// are drawn every epoch (a mild regularizer vs. the materialized path).
/// The negative-sampling noise distribution and the Huffman tree use the
/// weighted out-degree as the visit-frequency proxy — exact for uniform
/// walks on undirected graphs (stationary distribution ~ degree) and a
/// close approximation otherwise.
[[nodiscard]] TrainResult train_embedding_streaming(const graph::Graph& g,
                                                    const walk::WalkConfig& walk_config,
                                                    const TrainConfig& config);

}  // namespace v2v::embed
