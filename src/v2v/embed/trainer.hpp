// word2vec-style SGD trainer adapted to vertex sequences (paper §II-B).
//
// The paper uses CBOW with window n = 5; SkipGram is included because the
// DeepWalk baseline uses it and the ablation bench compares the two. Both
// objectives from word2vec are available: negative sampling (default,
// noise distribution ~ frequency^(3/4)) and hierarchical softmax (Huffman
// tree over visit frequencies).
//
// Training runs Hogwild-style: worker threads update the shared weight
// matrices without locks, which is the standard word2vec recipe. With one
// thread, training is fully deterministic for a fixed seed.
//
// Early stopping reproduces the paper's Fig 7 behaviour (training time
// decreases as community structure strengthens): when the relative
// improvement of the mean epoch loss drops below `convergence_tol`,
// training stops before `epochs`.
#pragma once

#include <cstdint>
#include <vector>

#include "v2v/embed/embedding.hpp"
#include "v2v/walk/corpus.hpp"
#include "v2v/walk/walker.hpp"

namespace v2v::obs {
class MetricsRegistry;
}  // namespace v2v::obs

namespace v2v::embed {

enum class Architecture : std::uint8_t { kCbow, kSkipGram };
enum class Objective : std::uint8_t { kNegativeSampling, kHierarchicalSoftmax };

struct TrainConfig {
  /// Embedding width d (dimensions; paper sweeps 20–1000, default 100).
  std::size_t dimensions = 100;
  /// Context window n: vertices considered on each side of the target
  /// (count; paper default n = 5).
  std::size_t window = 5;
  /// CBOW (paper §II-B default) or SkipGram (DeepWalk baseline).
  Architecture architecture = Architecture::kCbow;
  /// Negative sampling (word2vec default) or hierarchical softmax.
  Objective objective = Objective::kNegativeSampling;
  /// Negative samples drawn per positive target (count; word2vec
  /// default 5). Ignored under hierarchical softmax.
  std::size_t negative = 5;
  /// Maximum passes over the corpus (count; default 5).
  std::size_t epochs = 5;
  /// Passes guaranteed before early stopping may trigger (count).
  std::size_t min_epochs = 1;
  /// Stop when (prev_loss - loss) < convergence_tol * prev_loss
  /// (dimensionless relative improvement; 0 disables early stopping).
  double convergence_tol = 0.0;
  /// Starting SGD step size (dimensionless; word2vec CBOW default 0.05),
  /// decayed linearly over the planned token budget.
  double initial_lr = 0.05;
  /// Learning-rate floor as a fraction of initial_lr (dimensionless).
  double min_lr_fraction = 1e-4;
  /// Frequent-vertex subsampling threshold (corpus frequency fraction,
  /// word2vec "-sample"); 0 = keep every occurrence (default).
  double subsample = 0.0;
  /// Hogwild worker threads (count; 1 = deterministic for a fixed seed).
  std::size_t threads = 1;
  /// Sentences (walks) per dynamic work-queue chunk; 0 (default) picks
  /// default_grain(walk_count, threads). Chunk boundaries — and hence the
  /// per-chunk RNG streams — depend only on this value, so results for a
  /// fixed (seed, grain) are reproducible regardless of scheduling (exact
  /// with 1 thread; Hogwild-racy above).
  std::size_t grain = 0;
  /// Seed for init, sampling, and shuffling (64-bit; default 1).
  std::uint64_t seed = 1;
  /// Optional observability sink: training records words/sec per epoch,
  /// the learning-rate and loss trajectories, epoch wall-time histograms,
  /// and a "train" > "epoch" stage span tree into it. Null (default)
  /// disables instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
};

struct TrainStats {
  std::size_t epochs_run = 0;       ///< passes actually executed (count)
  std::vector<double> epoch_loss;   ///< mean loss per training example, one per epoch
  double train_seconds = 0.0;       ///< SGD wall time, excludes corpus generation (s)
  std::uint64_t examples = 0;       ///< total (context, target) updates (count)
  bool converged_early = false;     ///< true if the loss-plateau rule stopped training
};

struct TrainResult {
  Embedding embedding;
  TrainStats stats;
};

/// Trains vertex embeddings from a walk corpus. `vocab_size` must be at
/// least max(token)+1; vertices that never appear in the corpus keep their
/// small random initial vectors.
[[nodiscard]] TrainResult train_embedding(const walk::Corpus& corpus,
                                          std::size_t vocab_size,
                                          const TrainConfig& config);

/// Streaming variant: generates walks on the fly and trains on each walk
/// immediately, never materializing the corpus. At the paper's full scale
/// (t = l = 1000 on 1000 vertices) the corpus is ~10^9 tokens, far beyond
/// memory; this path trains in O(vocab x dims) space instead. Fresh walks
/// are drawn every epoch (a mild regularizer vs. the materialized path).
/// The negative-sampling noise distribution and the Huffman tree use the
/// weighted out-degree as the visit-frequency proxy — exact for uniform
/// walks on undirected graphs (stationary distribution ~ degree) and a
/// close approximation otherwise.
[[nodiscard]] TrainResult train_embedding_streaming(const graph::Graph& g,
                                                    const walk::WalkConfig& walk_config,
                                                    const TrainConfig& config);

}  // namespace v2v::embed
