// Precomputed logistic function, the classic word2vec trick: sigma(x) is
// read from a 1024-entry table over [-6, 6] and clamped outside. The SGD
// inner loop calls this once per (context, target) pair, so avoiding expf
// is a measurable win.
#pragma once

#include <array>
#include <cmath>

namespace v2v::embed {

class SigmoidTable {
 public:
  SigmoidTable() noexcept {
    for (std::size_t i = 0; i < kSize; ++i) {
      const double x = (static_cast<double>(i) / kSize * 2.0 - 1.0) * kMaxExp;
      values_[i] = static_cast<float>(1.0 / (1.0 + std::exp(-x)));
    }
  }

  [[nodiscard]] float operator()(float x) const noexcept {
    // Single in-range test on the hot path. The cold branch also catches
    // NaN, which would otherwise flow into the float->size_t cast below —
    // undefined behavior (flagged by UBSan's float-cast-overflow).
    if (!(std::fabs(x) < kMaxExp)) {
      if (x >= kMaxExp) return 1.0f;
      if (x <= -kMaxExp) return 0.0f;
      return 0.5f;  // NaN: return sigma's midpoint rather than trap
    }
    const auto idx =
        static_cast<std::size_t>((x + kMaxExp) * (kSize / (2.0f * kMaxExp)));
    return values_[idx < kSize ? idx : kSize - 1];
  }

  static constexpr float kMaxExp = 6.0f;

 private:
  static constexpr std::size_t kSize = 1024;
  std::array<float, kSize> values_{};
};

/// Shared immutable instance (construction is cheap but not free).
[[nodiscard]] const SigmoidTable& sigmoid_table();

}  // namespace v2v::embed
