// Huffman coding over vertex frequencies, for hierarchical-softmax
// training. Follows the classic word2vec construction: vocab sorted by
// descending count, then a two-pointer merge builds the binary tree in
// O(V) after sorting; each leaf gets its root-to-leaf code and the list of
// inner-node indices on its path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "v2v/common/check.hpp"

namespace v2v::embed {

struct HuffmanCode {
  /// Inner-node ids (0-based, < vocab-1) from root toward the leaf.
  std::vector<std::uint32_t> points;
  /// Branch taken at each node: 0 = left, 1 = right. Same length as points.
  std::vector<std::uint8_t> code;
};

class HuffmanTree {
 public:
  /// Builds codes for `frequencies.size()` symbols; zero frequencies are
  /// treated as 1 so every symbol gets a code.
  explicit HuffmanTree(std::span<const std::uint64_t> frequencies);

  [[nodiscard]] std::size_t vocab_size() const noexcept { return codes_.size(); }

  /// Number of inner nodes (= vocab - 1 for vocab >= 1).
  [[nodiscard]] std::size_t inner_count() const noexcept { return inner_count_; }

  [[nodiscard]] const HuffmanCode& code(std::size_t symbol) const noexcept {
    V2V_BOUNDS(symbol, codes_.size());
    return codes_[symbol];
  }

  /// Expected code length weighted by frequency (entropy-bound check).
  [[nodiscard]] double mean_code_length(std::span<const std::uint64_t> frequencies) const;

 private:
  std::vector<HuffmanCode> codes_;
  std::size_t inner_count_ = 0;
};

}  // namespace v2v::embed
