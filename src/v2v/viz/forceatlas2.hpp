// ForceAtlas2 force-directed layout (Jacomy et al., PLoS ONE 2014) —
// the algorithm the paper uses to draw Fig 3. Standard forces:
//   repulsion:  k_r (deg_u + 1)(deg_v + 1) / dist
//   attraction: dist (linear, per edge)
//   gravity:    k_g (deg + 1) toward the origin
// with the paper's adaptive local speed (swing vs traction). Exact O(n^2)
// repulsion; the Fig-3 graphs have 1000 vertices so no Barnes–Hut needed.
#pragma once

#include <cstdint>
#include <vector>

#include "v2v/common/point.hpp"
#include "v2v/common/rng.hpp"
#include "v2v/graph/graph.hpp"

namespace v2v::viz {

using v2v::Point2;

struct ForceAtlas2Config {
  std::size_t iterations = 300;
  double repulsion = 2.0;      ///< k_r
  double gravity = 1.0;        ///< k_g
  double jitter_tolerance = 1.0;
  bool linlog = false;         ///< attraction = log(1 + d) instead of d
  std::uint64_t seed = 1;      ///< initial random placement
};

struct LayoutResult {
  std::vector<Point2> positions;
  double final_swing = 0.0;   ///< mean swing at the last iteration (stability)
};

/// Lays out an undirected or directed graph (arcs are treated as
/// undirected springs). Deterministic for a fixed seed.
[[nodiscard]] LayoutResult layout_forceatlas2(const graph::Graph& g,
                                              const ForceAtlas2Config& config = {});

/// Mean centroid distance between groups divided by mean within-group
/// spread — a scalar "how separated do the communities look" score used
/// by the Fig 3 bench to check the layout separates planted groups.
[[nodiscard]] double group_separation(const std::vector<Point2>& positions,
                                      const std::vector<std::uint32_t>& group);

}  // namespace v2v::viz
