// SVG emission so the reproduced figures (3, 4, 8) can actually be viewed.
// Points are auto-scaled to the canvas; classes map to a 12-color palette.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "v2v/graph/graph.hpp"
#include "v2v/viz/forceatlas2.hpp"

namespace v2v::viz {

struct SvgOptions {
  int width = 900;
  int height = 900;
  double point_radius = 3.0;
  bool draw_edges = true;         ///< write_graph_svg only; scatter has no edges
  std::string title;
  std::vector<std::string> class_names;  ///< legend labels, optional
};

/// Scatter plot of 2-D points colored by class id.
void write_scatter_svg(const std::string& path, const std::vector<Point2>& points,
                       const std::vector<std::uint32_t>& classes,
                       const SvgOptions& options = {});

/// Graph drawing: layout positions + edges + class colors (Fig 3 style).
void write_graph_svg(const std::string& path, const graph::Graph& g,
                     const std::vector<Point2>& positions,
                     const std::vector<std::uint32_t>& classes,
                     const SvgOptions& options = {});

/// The palette used for class colors (cycled when classes exceed it).
[[nodiscard]] const std::vector<std::string>& svg_palette();

}  // namespace v2v::viz
