#include "v2v/viz/forceatlas2.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace v2v::viz {

LayoutResult layout_forceatlas2(const graph::Graph& g, const ForceAtlas2Config& config) {
  const std::size_t n = g.vertex_count();
  LayoutResult result;
  result.positions.resize(n);
  if (n == 0) return result;

  Rng rng(config.seed);
  for (auto& p : result.positions) {
    p.x = rng.next_double(-1.0, 1.0) * std::sqrt(static_cast<double>(n));
    p.y = rng.next_double(-1.0, 1.0) * std::sqrt(static_cast<double>(n));
  }

  std::vector<double> mass(n);
  for (std::size_t v = 0; v < n; ++v) {
    mass[v] = static_cast<double>(g.out_degree(static_cast<graph::VertexId>(v))) + 1.0;
  }

  std::vector<Point2> force(n), prev_force(n);
  double speed = 1.0;
  double speed_efficiency = 1.0;

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    std::fill(force.begin(), force.end(), Point2{});

    // Pairwise repulsion, O(n^2).
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        double dx = result.positions[u].x - result.positions[v].x;
        double dy = result.positions[u].y - result.positions[v].y;
        double d2 = dx * dx + dy * dy;
        if (d2 < 1e-9) {  // coincident: nudge apart deterministically
          dx = 1e-3 * (static_cast<double>(u % 7) - 3.0 + 0.1);
          dy = 1e-3 * (static_cast<double>(v % 5) - 2.0 + 0.1);
          d2 = dx * dx + dy * dy;
        }
        const double f = config.repulsion * mass[u] * mass[v] / d2;
        force[u].x += dx * f;
        force[u].y += dy * f;
        force[v].x -= dx * f;
        force[v].y -= dy * f;
      }
    }

    // Attraction along arcs (each undirected edge contributes twice with
    // half strength via its two arcs; directed arcs act once).
    const double arc_scale = g.directed() ? 1.0 : 0.5;
    for (graph::VertexId u = 0; u < n; ++u) {
      for (const graph::VertexId v : g.neighbors(u)) {
        if (u == v) continue;
        const double dx = result.positions[v].x - result.positions[u].x;
        const double dy = result.positions[v].y - result.positions[u].y;
        const double d = std::sqrt(dx * dx + dy * dy);
        if (d < 1e-12) continue;
        const double f =
            arc_scale * (config.linlog ? std::log1p(d) / d : 1.0);
        force[u].x += dx * f;
        force[u].y += dy * f;
        if (g.directed()) {
          // Pull the target symmetrically so directed graphs don't drift.
          force[v].x -= dx * f;
          force[v].y -= dy * f;
        }
      }
    }

    // Gravity toward the origin keeps disconnected parts on canvas.
    for (std::size_t v = 0; v < n; ++v) {
      const double d = std::hypot(result.positions[v].x, result.positions[v].y);
      if (d > 1e-12) {
        const double f = config.gravity * mass[v] / d;
        force[v].x -= result.positions[v].x * f;
        force[v].y -= result.positions[v].y * f;
      }
    }

    // Adaptive speed from global swing/traction (FA2 §"speed").
    double swing = 0.0, traction = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const double sx = force[v].x - prev_force[v].x;
      const double sy = force[v].y - prev_force[v].y;
      const double tx = force[v].x + prev_force[v].x;
      const double ty = force[v].y + prev_force[v].y;
      swing += mass[v] * std::hypot(sx, sy);
      traction += 0.5 * mass[v] * std::hypot(tx, ty);
    }
    const double estimated = config.jitter_tolerance * config.jitter_tolerance *
                             traction / (swing + 1e-12);
    const double target_speed = std::min(estimated * speed_efficiency, 10.0);
    if (target_speed > speed * 1.5) {
      speed *= 1.5;
    } else {
      speed = std::max(target_speed, speed * 0.5);
    }
    speed_efficiency = std::clamp(speed_efficiency, 0.05, 1.0);
    result.final_swing = swing / static_cast<double>(n);

    for (std::size_t v = 0; v < n; ++v) {
      const double local_swing =
          std::hypot(force[v].x - prev_force[v].x, force[v].y - prev_force[v].y);
      const double factor = speed / (1.0 + std::sqrt(speed * local_swing));
      result.positions[v].x += force[v].x * factor;
      result.positions[v].y += force[v].y * factor;
    }
    prev_force = force;
  }
  return result;
}

double group_separation(const std::vector<Point2>& positions,
                        const std::vector<std::uint32_t>& group) {
  std::unordered_map<std::uint32_t, Point2> centroid;
  std::unordered_map<std::uint32_t, std::size_t> count;
  for (std::size_t v = 0; v < positions.size(); ++v) {
    centroid[group[v]].x += positions[v].x;
    centroid[group[v]].y += positions[v].y;
    ++count[group[v]];
  }
  for (auto& [label, c] : centroid) {
    c.x /= static_cast<double>(count[label]);
    c.y /= static_cast<double>(count[label]);
  }

  double spread = 0.0;
  for (std::size_t v = 0; v < positions.size(); ++v) {
    const auto& c = centroid[group[v]];
    spread += std::hypot(positions[v].x - c.x, positions[v].y - c.y);
  }
  spread /= static_cast<double>(std::max<std::size_t>(positions.size(), 1));

  double between = 0.0;
  std::size_t pairs = 0;
  for (auto it = centroid.begin(); it != centroid.end(); ++it) {
    for (auto jt = std::next(it); jt != centroid.end(); ++jt) {
      between += std::hypot(it->second.x - jt->second.x, it->second.y - jt->second.y);
      ++pairs;
    }
  }
  if (pairs == 0 || spread <= 1e-12) return 0.0;
  return (between / static_cast<double>(pairs)) / spread;
}

}  // namespace v2v::viz
