#include "v2v/viz/svg.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace v2v::viz {
namespace {

struct Scale {
  double min_x, min_y, span_x, span_y;
  int width, height, margin;

  [[nodiscard]] double sx(double x) const {
    return margin + (x - min_x) / span_x * (width - 2 * margin);
  }
  [[nodiscard]] double sy(double y) const {
    // Flip y so "up" in data space is up on screen.
    return height - margin - (y - min_y) / span_y * (height - 2 * margin);
  }
};

Scale fit(const std::vector<Point2>& points, const SvgOptions& options) {
  double min_x = std::numeric_limits<double>::max(), max_x = -min_x;
  double min_y = min_x, max_y = max_x;
  for (const auto& p : points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  if (points.empty()) min_x = min_y = 0.0, max_x = max_y = 1.0;
  const double span_x = std::max(max_x - min_x, 1e-9);
  const double span_y = std::max(max_y - min_y, 1e-9);
  return {min_x, min_y, span_x, span_y, options.width, options.height, 30};
}

std::ofstream open_svg(const std::string& path, const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("svg: cannot open " + path);
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
      << "\" height=\"" << options.height << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!options.title.empty()) {
    out << "<text x=\"12\" y=\"20\" font-family=\"sans-serif\" font-size=\"14\">"
        << options.title << "</text>\n";
  }
  return out;
}

void emit_legend(std::ofstream& out, const SvgOptions& options) {
  for (std::size_t c = 0; c < options.class_names.size(); ++c) {
    const int y = 40 + static_cast<int>(c) * 18;
    out << "<circle cx=\"16\" cy=\"" << y << "\" r=\"5\" fill=\""
        << svg_palette()[c % svg_palette().size()] << "\"/>\n"
        << "<text x=\"26\" y=\"" << y + 4
        << "\" font-family=\"sans-serif\" font-size=\"12\">" << options.class_names[c]
        << "</text>\n";
  }
}

void emit_points(std::ofstream& out, const std::vector<Point2>& points,
                 const std::vector<std::uint32_t>& classes, const Scale& scale,
                 double radius) {
  const auto& palette = svg_palette();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::string& color =
        classes.empty() ? palette[0] : palette[classes[i] % palette.size()];
    out << "<circle cx=\"" << scale.sx(points[i].x) << "\" cy=\""
        << scale.sy(points[i].y) << "\" r=\"" << radius << "\" fill=\"" << color
        << "\" fill-opacity=\"0.8\"/>\n";
  }
}

}  // namespace

const std::vector<std::string>& svg_palette() {
  static const std::vector<std::string> palette = {
      "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b",
      "#e377c2", "#7f7f7f", "#bcbd22", "#17becf", "#aec7e8", "#ffbb78"};
  return palette;
}

void write_scatter_svg(const std::string& path, const std::vector<Point2>& points,
                       const std::vector<std::uint32_t>& classes,
                       const SvgOptions& options) {
  if (!classes.empty() && classes.size() != points.size()) {
    throw std::invalid_argument("svg: classes/points size mismatch");
  }
  auto out = open_svg(path, options);
  const Scale scale = fit(points, options);
  emit_points(out, points, classes, scale, options.point_radius);
  emit_legend(out, options);
  out << "</svg>\n";
}

void write_graph_svg(const std::string& path, const graph::Graph& g,
                     const std::vector<Point2>& positions,
                     const std::vector<std::uint32_t>& classes,
                     const SvgOptions& options) {
  if (positions.size() != g.vertex_count()) {
    throw std::invalid_argument("svg: positions/graph size mismatch");
  }
  auto out = open_svg(path, options);
  const Scale scale = fit(positions, options);
  if (options.draw_edges) {
    // Edges first so points draw on top.
    out << "<g stroke=\"#cccccc\" stroke-width=\"0.4\" stroke-opacity=\"0.5\">\n";
    for (graph::VertexId u = 0; u < g.vertex_count(); ++u) {
      for (const graph::VertexId v : g.neighbors(u)) {
        if (!g.directed() && v < u) continue;
        out << "<line x1=\"" << scale.sx(positions[u].x) << "\" y1=\""
            << scale.sy(positions[u].y) << "\" x2=\"" << scale.sx(positions[v].x)
            << "\" y2=\"" << scale.sy(positions[v].y) << "\"/>\n";
      }
    }
    out << "</g>\n";
  }
  emit_points(out, positions, classes, scale, options.point_radius);
  emit_legend(out, options);
  out << "</svg>\n";
}

}  // namespace v2v::viz
