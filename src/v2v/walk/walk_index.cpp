#include "v2v/walk/walk_index.hpp"

#include <algorithm>
#include <limits>

#include "v2v/common/check.hpp"

namespace v2v::walk {

WalkIndex::WalkIndex(const Corpus& corpus, std::size_t vertex_count)
    : WalkIndex(static_cast<const CorpusReader&>(InMemoryCorpus(corpus)),
                vertex_count) {}

WalkIndex::WalkIndex(const CorpusReader& corpus, std::size_t vertex_count)
    : walk_count_(corpus.walk_count()) {
  V2V_CHECK(walk_count_ < std::numeric_limits<std::uint32_t>::max(),
            "WalkIndex: walk count exceeds 32-bit ids");
  constexpr std::uint32_t kUnseen = std::numeric_limits<std::uint32_t>::max();

  // Counting sort over (vertex, walk) incidences. The stamp array dedups
  // revisits within one walk: stamp[v] remembers the last walk that
  // counted v, so each walk contributes each vertex once.
  std::vector<std::uint64_t> counts(vertex_count + 1, 0);
  std::vector<std::uint32_t> stamp(vertex_count, kUnseen);
  for (std::size_t w = 0; w < walk_count_; ++w) {
    for (const graph::VertexId token : corpus.walk(w)) {
      V2V_BOUNDS(token, vertex_count);
      if (stamp[token] != static_cast<std::uint32_t>(w)) {
        stamp[token] = static_cast<std::uint32_t>(w);
        ++counts[token + 1];
      }
    }
  }
  offsets_.assign(vertex_count + 1, 0);
  for (std::size_t v = 0; v < vertex_count; ++v) {
    offsets_[v + 1] = offsets_[v] + counts[v + 1];
  }
  walk_ids_.resize(offsets_[vertex_count]);

  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  std::fill(stamp.begin(), stamp.end(), kUnseen);
  for (std::size_t w = 0; w < walk_count_; ++w) {
    for (const graph::VertexId token : corpus.walk(w)) {
      if (stamp[token] != static_cast<std::uint32_t>(w)) {
        stamp[token] = static_cast<std::uint32_t>(w);
        walk_ids_[cursor[token]++] = static_cast<std::uint32_t>(w);
      }
    }
  }
}

}  // namespace v2v::walk
