// Walker's alias method (Vose's variant) for O(1) sampling from a discrete
// distribution. Used for weight-biased random-walk steps and for the
// unigram^0.75 negative-sampling table in the embedding trainer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "v2v/common/check.hpp"
#include "v2v/common/rng.hpp"

namespace v2v::walk {

class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from non-negative weights; at least one must be positive.
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] std::size_t size() const noexcept { return probability_.size(); }
  [[nodiscard]] bool empty() const noexcept { return probability_.empty(); }

  /// Samples an index with probability weight[i] / sum(weights). O(1).
  /// Precondition: the table is non-empty (default construction yields an
  /// empty table that must not be sampled).
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept {
    V2V_CHECK(!probability_.empty(), "sample from empty AliasTable");
    const std::size_t slot = rng.next_below(probability_.size());
    return rng.next_double() < probability_[slot] ? slot : alias_[slot];
  }

 private:
  std::vector<double> probability_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace v2v::walk
