#include "v2v/walk/corpus_spool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <exception>
#include <filesystem>
#include <stdexcept>

#include "v2v/common/thread_pool.hpp"
#include "v2v/obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace v2v::walk {
namespace {

using store::SnapshotErrorCode;

constexpr std::size_t kSmftFixedWords = 5;

void put_u64s(std::vector<std::uint8_t>& out, const std::uint64_t* words,
              std::size_t count) {
  const std::size_t base = out.size();
  out.resize(base + count * sizeof(std::uint64_t));
  std::memcpy(out.data() + base, words, count * sizeof(std::uint64_t));
}

[[nodiscard]] std::uint64_t get_u64(std::span<const std::uint8_t> bytes,
                                    std::size_t word) {
  std::uint64_t value = 0;
  std::memcpy(&value, bytes.data() + word * sizeof(std::uint64_t),
              sizeof(std::uint64_t));
  return value;
}

}  // namespace

std::string spool_manifest_path(const std::string& dir) {
  return (std::filesystem::path(dir) / "manifest.v2vspool").string();
}

std::string spool_segment_path(const std::string& dir, std::size_t index) {
  return (std::filesystem::path(dir) / ("seg-" + std::to_string(index) + ".v2vseg"))
      .string();
}

SpoolStats generate_corpus_spooled(const graph::Graph& g,
                                   const WalkConfig& config,
                                   std::uint64_t seed) {
  if (config.spool_dir.empty()) {
    throw std::invalid_argument(
        "generate_corpus_spooled: config.spool_dir must be set");
  }
  const obs::ScopedTimer span(config.metrics, "walk");
  std::error_code ec;
  std::filesystem::create_directories(config.spool_dir, ec);
  if (ec) {
    store::throw_snapshot_error(SnapshotErrorCode::kOpenFailed, config.spool_dir,
                                "cannot create spool directory: " + ec.message());
  }

  const Walker walker(g, config);
  const std::size_t n = g.vertex_count();
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  // Same split as generate_corpus: one spool segment per chunk, so the
  // concatenation of segments in chunk order is the in-RAM corpus.
  const std::size_t grain =
      config.grain != 0 ? config.grain : default_grain(n, threads);
  const std::size_t chunks = chunk_count(n, grain);
  const std::size_t workers = std::min(threads, std::max<std::size_t>(1, chunks));
  const std::size_t buffer_mb =
      config.spool_buffer_mb != 0 ? config.spool_buffer_mb : 64;
  const std::size_t flush_tokens = std::max<std::size_t>(
      config.walk_length, buffer_mb * (1u << 20) / sizeof(graph::VertexId));

  // Token frequencies accumulate per worker (u64 addition commutes, so
  // the merged table is schedule-independent); tokens are vertex ids < n.
  std::vector<std::vector<std::uint64_t>> worker_freq(
      workers, std::vector<std::uint64_t>(n, 0));
  std::vector<std::uint64_t> seg_walks(chunks, 0), seg_tokens(chunks, 0),
      seg_bytes(chunks, 0);
  std::vector<std::exception_ptr> errors(chunks);
  std::atomic<bool> failed{false};

  const Rng root(seed);
  parallel_for_dynamic(
      threads, n, grain,
      [&](std::size_t worker, std::size_t chunk, std::size_t begin, std::size_t end) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          store::StreamingSnapshotWriter writer(
              spool_segment_path(config.spool_dir, chunk), {"ctok", "cofs"});
          std::vector<std::uint64_t>& freq = worker_freq[worker];
          std::vector<std::uint64_t> offsets;
          offsets.reserve((end - begin) * config.walks_per_vertex + 1);
          offsets.push_back(0);
          std::vector<graph::VertexId> tokbuf;
          tokbuf.reserve(std::min(flush_tokens + config.walk_length,
                                  (end - begin) * config.walks_per_vertex *
                                          config.walk_length +
                                      config.walk_length));
          std::vector<graph::VertexId> buffer;
          buffer.reserve(config.walk_length);
          for (std::size_t v = begin; v < end; ++v) {
            // Per-vertex stream: identical walks to generate_corpus.
            Rng rng = root.fork(v);
            for (std::size_t w = 0; w < config.walks_per_vertex; ++w) {
              walker.walk_from(static_cast<graph::VertexId>(v), rng, buffer);
              for (const graph::VertexId token : buffer) ++freq[token];
              tokbuf.insert(tokbuf.end(), buffer.begin(), buffer.end());
              offsets.push_back(offsets.back() + buffer.size());
              if (tokbuf.size() >= flush_tokens) {
                writer.append(tokbuf.data(),
                              tokbuf.size() * sizeof(graph::VertexId));
                tokbuf.clear();
              }
            }
          }
          if (!tokbuf.empty()) {
            writer.append(tokbuf.data(), tokbuf.size() * sizeof(graph::VertexId));
          }
          writer.next_section();
          writer.append(offsets.data(), offsets.size() * sizeof(std::uint64_t));
          writer.finish(offsets.size() - 1, 0);
          seg_walks[chunk] = offsets.size() - 1;
          seg_tokens[chunk] = offsets.back();
          seg_bytes[chunk] = writer.bytes_written();
        } catch (...) {
          errors[chunk] = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      });
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  std::vector<std::uint64_t> freq(n, 0);
  for (const auto& wf : worker_freq) {
    for (std::size_t v = 0; v < n; ++v) freq[v] += wf[v];
  }
  SpoolStats stats;
  stats.segments = chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    stats.walks += seg_walks[c];
    stats.tokens += seg_tokens[c];
    stats.bytes_written += seg_bytes[c];
  }
  std::size_t freq_len = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (freq[v] != 0) freq_len = v + 1;
  }
  stats.max_token = freq_len == 0 ? 0 : freq_len - 1;

  std::vector<std::uint8_t> smft;
  const std::uint64_t fixed[kSmftFixedWords] = {kSpoolFormatVersion, chunks,
                                                stats.walks, stats.tokens,
                                                stats.max_token};
  put_u64s(smft, fixed, kSmftFixedWords);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::uint64_t per_seg[2] = {seg_walks[c], seg_tokens[c]};
    put_u64s(smft, per_seg, 2);
  }
  std::vector<std::uint8_t> sfrq;
  if (stats.tokens > 0) put_u64s(sfrq, freq.data(), freq_len);

  store::SnapshotBuilder manifest(stats.walks, 0);
  manifest.add_section("smft", std::move(smft));
  manifest.add_section("sfrq", std::move(sfrq));
  const std::string manifest_path = spool_manifest_path(config.spool_dir);
  manifest.write(manifest_path);
  stats.bytes_written += std::filesystem::file_size(manifest_path, ec);

  if (config.metrics != nullptr) {
    auto& m = *config.metrics;
    m.counter("walk.walks").add(stats.walks);
    m.counter("walk.tokens").add(stats.tokens);
    m.counter("walk.steps").add(stats.tokens - stats.walks);
    m.gauge("walk.seconds").set(span.seconds());
    m.gauge("walk.grain").set(static_cast<double>(grain));
    m.gauge("walk.chunks").set(static_cast<double>(chunks));
    if (span.seconds() > 0.0) {
      m.gauge("walk.walks_per_sec")
          .set(static_cast<double>(stats.walks) / span.seconds());
      m.gauge("walk.steps_per_sec")
          .set(static_cast<double>(stats.tokens - stats.walks) / span.seconds());
    }
    m.gauge("spool.segments").set(static_cast<double>(stats.segments));
    m.gauge("spool.bytes_written").set(static_cast<double>(stats.bytes_written));
    m.gauge("spool.buffer_mb").set(static_cast<double>(buffer_mb));
  }
  return stats;
}

SpooledCorpus SpooledCorpus::open(const std::string& dir, store::MapMode mode) {
  const std::string manifest_path = spool_manifest_path(dir);
  SpooledCorpus out;
  std::uint64_t segment_count = 0;
  std::vector<std::uint64_t> seg_walks, seg_tokens;
  {
    const store::MappedSnapshot manifest =
        store::MappedSnapshot::open(manifest_path, mode);
    const auto smft = manifest.section("smft");
    if (smft.size() < kSmftFixedWords * sizeof(std::uint64_t) ||
        smft.size() % sizeof(std::uint64_t) != 0) {
      store::throw_snapshot_error(SnapshotErrorCode::kBadHeader, manifest_path,
                                  "spool meta section too short");
    }
    const std::uint64_t version = get_u64(smft, 0);
    if (version != kSpoolFormatVersion) {
      store::throw_snapshot_error(
          SnapshotErrorCode::kBadVersion, manifest_path,
          "spool format version " + std::to_string(version) +
              " (this build reads " + std::to_string(kSpoolFormatVersion) + ")");
    }
    segment_count = get_u64(smft, 1);
    out.total_walks_ = get_u64(smft, 2);
    out.total_tokens_ = get_u64(smft, 3);
    const std::uint64_t max_token = get_u64(smft, 4);
    if (smft.size() !=
        (kSmftFixedWords + 2 * segment_count) * sizeof(std::uint64_t)) {
      store::throw_snapshot_error(SnapshotErrorCode::kBadHeader, manifest_path,
                                  "spool meta size disagrees with segment count");
    }
    seg_walks.reserve(segment_count);
    seg_tokens.reserve(segment_count);
    for (std::uint64_t c = 0; c < segment_count; ++c) {
      seg_walks.push_back(get_u64(smft, kSmftFixedWords + 2 * c));
      seg_tokens.push_back(get_u64(smft, kSmftFixedWords + 2 * c + 1));
    }

    const auto sfrq = manifest.section("sfrq");
    const std::size_t expect_freq =
        out.total_tokens_ == 0 ? 0 : static_cast<std::size_t>(max_token) + 1;
    if (sfrq.size() != expect_freq * sizeof(std::uint64_t)) {
      store::throw_snapshot_error(SnapshotErrorCode::kBadHeader, manifest_path,
                                  "spool frequency table size mismatch");
    }
    out.freq_.resize(expect_freq);
    if (expect_freq > 0) std::memcpy(out.freq_.data(), sfrq.data(), sfrq.size());
    out.max_token_ = static_cast<graph::VertexId>(max_token);
    std::uint64_t freq_total = 0;
    for (const std::uint64_t f : out.freq_) freq_total += f;
    if (freq_total != out.total_tokens_) {
      store::throw_snapshot_error(SnapshotErrorCode::kBadHeader, manifest_path,
                                  "spool frequency table does not sum to "
                                  "total tokens");
    }
  }

  out.segments_.reserve(segment_count);
  std::uint64_t walks_seen = 0, tokens_seen = 0;
  for (std::uint64_t c = 0; c < segment_count; ++c) {
    const std::string path = spool_segment_path(dir, c);
    store::MappedSnapshot snap = store::MappedSnapshot::open(path, mode);
    const auto ctok = snap.section("ctok");
    const auto cofs = snap.section("cofs");
    if (ctok.size() != seg_tokens[c] * sizeof(graph::VertexId) ||
        cofs.size() != (seg_walks[c] + 1) * sizeof(std::uint64_t) ||
        snap.rows() != seg_walks[c]) {
      store::throw_snapshot_error(SnapshotErrorCode::kBadHeader, path,
                                  "segment shape disagrees with spool manifest");
    }
    // The spans stay valid across the move below: both the mmap base and
    // the fallback buffer's storage are stable under MappedSnapshot moves.
    const std::span<const graph::VertexId> tokens{
        reinterpret_cast<const graph::VertexId*>(ctok.data()),
        static_cast<std::size_t>(seg_tokens[c])};
    const std::span<const std::uint64_t> offsets{
        reinterpret_cast<const std::uint64_t*>(cofs.data()),
        static_cast<std::size_t>(seg_walks[c] + 1)};
    if (offsets.front() != 0 || offsets.back() != seg_tokens[c] ||
        !std::is_sorted(offsets.begin(), offsets.end())) {
      store::throw_snapshot_error(SnapshotErrorCode::kBadHeader, path,
                                  "segment offsets malformed");
    }
    out.segments_.push_back(Segment{std::move(snap), tokens, offsets,
                                    static_cast<std::size_t>(walks_seen)});
    walks_seen += seg_walks[c];
    tokens_seen += seg_tokens[c];
  }
  if (walks_seen != out.total_walks_ || tokens_seen != out.total_tokens_) {
    store::throw_snapshot_error(SnapshotErrorCode::kBadHeader, manifest_path,
                                "segment totals disagree with spool manifest");
  }
  return out;
}

std::span<const graph::VertexId> SpooledCorpus::walk(
    std::size_t i) const noexcept {
  // Last segment with first_walk <= i (empty segments share their
  // successor's first_walk; picking the last lands on the owner).
  std::size_t lo = 0, hi = segments_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (segments_[mid].first_walk <= i) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const Segment& seg = segments_[lo];
  const std::size_t local = i - seg.first_walk;
  const std::uint64_t b = seg.offsets[local];
  const std::uint64_t e = seg.offsets[local + 1];
  return {seg.tokens.data() + b, static_cast<std::size_t>(e - b)};
}

std::vector<std::uint64_t> SpooledCorpus::vertex_frequencies(
    std::size_t vocab) const {
  std::vector<std::uint64_t> out(vocab, 0);
  const std::size_t n = std::min(vocab, freq_.size());
  std::copy(freq_.begin(), freq_.begin() + static_cast<std::ptrdiff_t>(n),
            out.begin());
  return out;
}

void SpooledCorpus::prefetch(std::size_t begin, std::size_t end) const {
#if defined(__unix__) || defined(__APPLE__)
  end = std::min(end, total_walks_);
  if (begin >= end || segments_.empty()) return;
  const long page_long = ::sysconf(_SC_PAGESIZE);
  if (page_long <= 0) return;
  const auto page = static_cast<std::uintptr_t>(page_long);
  // Find the segment owning `begin`, then advance while segments overlap.
  std::size_t s = 0;
  {
    std::size_t lo = 0, hi = segments_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi + 1) / 2;
      if (segments_[mid].first_walk <= begin) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    s = lo;
  }
  for (; s < segments_.size() && segments_[s].first_walk < end; ++s) {
    const Segment& seg = segments_[s];
    if (!seg.snap.zero_copy()) continue;  // buffered copy is already resident
    const std::size_t seg_walks = seg.offsets.size() - 1;
    const std::size_t lo = std::max(begin, seg.first_walk) - seg.first_walk;
    const std::size_t hi = std::min(end, seg.first_walk + seg_walks) - seg.first_walk;
    if (lo >= hi) continue;
    const std::uint64_t b = seg.offsets[lo];
    const std::uint64_t e = seg.offsets[hi];
    if (e <= b) continue;
    auto addr = reinterpret_cast<std::uintptr_t>(seg.tokens.data() + b);
    std::size_t bytes =
        static_cast<std::size_t>(e - b) * sizeof(graph::VertexId);
    bytes += static_cast<std::size_t>(addr & (page - 1));
    addr &= ~(page - 1);
    // Advisory only; a failure just means no readahead.
    (void)::posix_madvise(reinterpret_cast<void*>(addr), bytes,
                          POSIX_MADV_WILLNEED);
  }
#else
  (void)begin;
  (void)end;
#endif
}

bool SpooledCorpus::zero_copy() const noexcept {
  return std::all_of(segments_.begin(), segments_.end(),
                     [](const Segment& seg) { return seg.snap.zero_copy(); });
}

}  // namespace v2v::walk
