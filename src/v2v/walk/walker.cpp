#include "v2v/walk/walker.hpp"

#include <algorithm>
#include <stdexcept>

#include "v2v/common/thread_pool.hpp"
#include "v2v/common/timer.hpp"
#include "v2v/obs/metrics.hpp"

namespace v2v::walk {
namespace {

/// Publishes corpus-generation telemetry: totals, throughput, scheduling
/// parameters, and how evenly the token workload landed on the workers
/// (`worker_tokens` = tokens produced by each dynamic-queue worker).
void record_corpus_metrics(obs::MetricsRegistry& metrics, std::size_t walks,
                           std::size_t tokens,
                           const std::vector<std::size_t>& worker_tokens,
                           double seconds, std::size_t max_tokens_possible,
                           std::size_t grain, std::size_t chunks) {
  std::size_t max_shard = 0;
  auto& shard_hist = metrics.histogram(
      "walk.shard_tokens",
      {0.0, std::max<double>(1.0, static_cast<double>(max_tokens_possible)), 64});
  for (const std::size_t shard_tokens : worker_tokens) {
    max_shard = std::max(max_shard, shard_tokens);
    shard_hist.record(static_cast<double>(shard_tokens));
  }
  // Steps = transitions taken; each walk contributes (length - 1).
  const std::size_t steps = tokens - walks;
  metrics.counter("walk.walks").add(walks);
  metrics.counter("walk.tokens").add(tokens);
  metrics.counter("walk.steps").add(steps);
  metrics.gauge("walk.seconds").set(seconds);
  metrics.gauge("walk.grain").set(static_cast<double>(grain));
  metrics.gauge("walk.chunks").set(static_cast<double>(chunks));
  if (seconds > 0.0) {
    metrics.gauge("walk.walks_per_sec").set(static_cast<double>(walks) / seconds);
    metrics.gauge("walk.steps_per_sec").set(static_cast<double>(steps) / seconds);
  }
  if (tokens > 0 && !worker_tokens.empty()) {
    const double mean_shard =
        static_cast<double>(tokens) / static_cast<double>(worker_tokens.size());
    metrics.gauge("walk.shard_imbalance")
        .set(static_cast<double>(max_shard) / mean_shard);
  }
}

}  // namespace

Walker::Walker(const graph::Graph& g, const WalkConfig& config)
    : graph_(g), config_(config) {
  if (config_.walk_length == 0) {
    throw std::invalid_argument("Walker: walk_length must be >= 1");
  }
  if (config_.temporal && !g.has_timestamps()) {
    throw std::invalid_argument("Walker: temporal walks need edge timestamps");
  }
  constrained_ = config_.temporal;

  // Static biased steps use per-vertex alias tables; temporal walks cannot
  // (the admissible arc set changes per step), they fall back to a linear
  // weighted scan in step(). Construction is embarrassingly parallel over
  // vertices — each table only reads the graph and writes its own slot —
  // and each table is a pure function of its vertex's arc weights, so the
  // result is byte-identical for any thread count.
  if (!constrained_ && config_.bias != StepBias::kUniform) {
    use_alias_ = true;
    alias_.resize(g.vertex_count());
    const WallTimer alias_timer;
    const std::size_t threads = std::max<std::size_t>(1, config_.threads);
    parallel_for_dynamic(
        threads, g.vertex_count(), config_.grain,
        [&](std::size_t, std::size_t, std::size_t begin, std::size_t end) {
          std::vector<double> weights;  // per-worker scratch
          for (std::size_t v = begin; v < end; ++v) {
            const auto nbrs = g.neighbors(static_cast<graph::VertexId>(v));
            if (nbrs.empty()) continue;
            weights.clear();
            weights.reserve(nbrs.size());
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
              weights.push_back(
                  config_.bias == StepBias::kEdgeWeight
                      ? g.arc_weight_at(static_cast<graph::VertexId>(v), i)
                      : g.vertex_weight(nbrs[i]));
            }
            double total = 0.0;
            for (const double w : weights) total += w;
            if (total > 0.0) alias_[v] = AliasTable(weights);
            // All-zero weights leave an empty table: treated as a dead end.
          }
        });
    if (config_.metrics != nullptr) {
      config_.metrics->gauge("walk.alias_build_seconds").set(alias_timer.seconds());
    }
  }
}

std::optional<std::pair<graph::VertexId, double>> Walker::step(
    graph::VertexId current, double prev_timestamp, Rng& rng) const {
  const auto nbrs = graph_.neighbors(current);
  if (nbrs.empty()) return std::nullopt;

  if (!constrained_) {
    if (config_.bias == StepBias::kUniform) {
      const std::size_t pick = rng.next_below(nbrs.size());
      return std::make_pair(nbrs[pick], graph::kNoTimestamp);
    }
    const AliasTable& table = alias_[current];
    if (table.empty()) return std::nullopt;  // all candidate weights zero
    const std::size_t pick = table.sample(rng);
    return std::make_pair(nbrs[pick], graph::kNoTimestamp);
  }

  // Temporal step: gather admissible arcs and their bias weights, then
  // sample by cumulative weight. O(out_degree) per step.
  const auto timestamps = graph_.arc_timestamps(current);
  double total = 0.0;
  thread_local std::vector<std::pair<std::size_t, double>> candidates;
  candidates.clear();
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const double ts = timestamps[i];
    if (prev_timestamp != graph::kNoTimestamp) {
      if (ts < prev_timestamp) continue;
      if (config_.time_window > 0.0 && ts - prev_timestamp > config_.time_window) continue;
    }
    double w = 1.0;
    if (config_.bias == StepBias::kEdgeWeight) {
      w = graph_.arc_weight_at(current, i);
    } else if (config_.bias == StepBias::kVertexWeight) {
      w = graph_.vertex_weight(nbrs[i]);
    }
    if (w <= 0.0) continue;
    total += w;
    candidates.emplace_back(i, total);
  }
  if (candidates.empty()) return std::nullopt;
  const double target = rng.next_double() * total;
  // Binary search over the cumulative weights.
  std::size_t lo = 0, hi = candidates.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (candidates[mid].second <= target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const std::size_t arc = candidates[lo].first;
  return std::make_pair(nbrs[arc], timestamps[arc]);
}

void Walker::walk_from(graph::VertexId start, Rng& rng,
                       std::vector<graph::VertexId>& out) const {
  out.clear();
  out.push_back(start);
  graph::VertexId current = start;
  double prev_ts = graph::kNoTimestamp;
  while (out.size() < config_.walk_length) {
    const auto next = step(current, prev_ts, rng);
    if (!next) break;  // dead end (directed sink / temporal cul-de-sac)
    current = next->first;
    prev_ts = next->second;
    out.push_back(current);
  }
}

Corpus generate_corpus(const graph::Graph& g, const WalkConfig& config,
                       std::uint64_t seed) {
  const obs::ScopedTimer span(config.metrics, "walk");
  const Walker walker(g, config);
  const std::size_t n = g.vertex_count();
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  const std::size_t grain =
      config.grain != 0 ? config.grain : default_grain(n, threads);
  const std::size_t chunks = chunk_count(n, grain);

  // One shard per chunk, merged in chunk order below: the corpus ordering
  // is a pure function of (graph, config, seed, grain) — dynamic
  // scheduling only decides which worker fills which shard, never where a
  // shard lands in the output.
  std::vector<Corpus> shards(chunks);
  std::vector<std::size_t> worker_tokens(std::min(threads, std::max<std::size_t>(1, chunks)), 0);
  const Rng root(seed);
  parallel_for_dynamic(
      threads, n, grain,
      [&](std::size_t worker, std::size_t chunk, std::size_t begin, std::size_t end) {
        Corpus& shard = shards[chunk];
        shard.reserve((end - begin) * config.walks_per_vertex,
                      (end - begin) * config.walks_per_vertex * config.walk_length);
        std::vector<graph::VertexId> buffer;
        buffer.reserve(config.walk_length);
        for (std::size_t v = begin; v < end; ++v) {
          // Per-vertex stream: deterministic regardless of scheduling.
          Rng rng = root.fork(v);
          for (std::size_t w = 0; w < config.walks_per_vertex; ++w) {
            walker.walk_from(static_cast<graph::VertexId>(v), rng, buffer);
            shard.add_walk(buffer);
          }
        }
        worker_tokens[worker] += shard.token_count();
      });

  std::size_t walks = 0, tokens = 0;
  for (const auto& shard : shards) {
    walks += shard.walk_count();
    tokens += shard.token_count();
  }

  if (config.metrics != nullptr) {
    record_corpus_metrics(*config.metrics, walks, tokens, worker_tokens,
                          span.seconds(),
                          n * config.walks_per_vertex * config.walk_length, grain,
                          chunks);
  }

  if (chunks == 1) return std::move(shards[0]);
  // Move-merge in chunk order: shard 0's storage is stolen wholesale and
  // each later shard is freed right after it is drained, so peak memory is
  // roughly one corpus, not two (the old copy-merge held everything twice).
  Corpus merged;
  for (auto& shard : shards) merged.append(std::move(shard));
  return merged;
}

}  // namespace v2v::walk
