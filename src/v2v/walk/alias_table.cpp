#include "v2v/walk/alias_table.hpp"

#include <stdexcept>

namespace v2v::walk {

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasTable: all-zero weights");

  probability_.resize(n);
  alias_.resize(n);
  // Scaled probabilities; entries > 1 are "large", < 1 are "small".
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are exactly 1 up to rounding.
  for (const std::uint32_t i : large) {
    probability_[i] = 1.0;
    alias_[i] = i;
  }
  for (const std::uint32_t i : small) {
    probability_[i] = 1.0;
    alias_[i] = i;
  }
}

}  // namespace v2v::walk
