// Per-vertex walk provenance: which walks visited which vertex.
//
// The dynamic-refresh pipeline uses this inverted index to invalidate
// exactly the walks whose trajectories touched a mutated ("dirty")
// vertex: a walk that never stepped on a dirty vertex sees the same
// neighbor sets and consumes the same RNG draws on the new graph, so it
// replays bit-identically and can be reused as-is.
//
// Stored as a CSR over vertices (offsets + walk ids); each walk is
// listed at most once per vertex regardless of how often it revisited
// it. Build cost is O(total tokens), memory O(distinct visits).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "v2v/graph/graph.hpp"
#include "v2v/walk/corpus.hpp"
#include "v2v/walk/corpus_reader.hpp"

namespace v2v::walk {

class WalkIndex {
 public:
  WalkIndex() = default;

  /// Indexes every walk of `corpus`. `vertex_count` bounds the vertex id
  /// space (tokens are vertex ids; all are < vertex_count by contract).
  /// The reader form streams each walk once, so a disk-spooled corpus is
  /// indexed without materializing it.
  WalkIndex(const CorpusReader& corpus, std::size_t vertex_count);
  WalkIndex(const Corpus& corpus, std::size_t vertex_count);

  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t walk_count() const noexcept { return walk_count_; }
  /// Total (vertex, walk) incidences — the index's memory footprint.
  [[nodiscard]] std::size_t entry_count() const noexcept { return walk_ids_.size(); }

  /// Ids of the walks that visited v, ascending. Empty for unvisited v.
  [[nodiscard]] std::span<const std::uint32_t> walks_visiting(
      graph::VertexId v) const noexcept {
    V2V_BOUNDS(v, vertex_count());
    return {walk_ids_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

 private:
  std::vector<std::uint64_t> offsets_{0};
  std::vector<std::uint32_t> walk_ids_;
  std::size_t walk_count_ = 0;
};

}  // namespace v2v::walk
