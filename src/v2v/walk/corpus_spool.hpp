// Out-of-core corpus spool: walk generation streamed to disk segments,
// training served straight out of the mapped files.
//
// Motivation (ROADMAP "out-of-core + NUMA pipeline"): at paper scale
// (t = 1000 walks of ℓ = 1000 steps per vertex) the corpus is ~4 TB per
// million vertices — it cannot be RAM-resident. The spool keeps walk
// generation's peak RSS at O(workers * spool_buffer_mb) and lets the
// trainer fault walk tokens through the page cache instead.
//
// On-disk layout under a spool directory (all files are v2 snapshot
// containers from store/format.hpp — checksummed header + named
// sections, so the corruption story is the snapshot corruption story):
//
//   manifest.v2vspool   sections "smft" + "sfrq"
//     smft: u64[5 + 2*segments] =
//           {spool_version, segment_count, total_walks, total_tokens,
//            max_token, then per segment {walks, tokens}}
//     sfrq: u64[max_token + 1] token occurrence counts (absent tokens 0;
//           empty when the corpus has no tokens) — lets the trainer build
//           its negative-sampling table without rescanning the spool
//   seg-<i>.v2vseg      sections "ctok" + "cofs", one per generation chunk
//     ctok: u32[tokens]      walk tokens (VertexId), concatenated
//     cofs: u64[walks + 1]   walk boundaries into ctok, starting at 0
//
// Determinism: generate_corpus_spooled shards work exactly like
// generate_corpus (same grain/chunk split, same per-vertex RNG streams),
// writes one segment per chunk, and SpooledCorpus serves walks in
// chunk-index order — so walk i's tokens are identical to the in-RAM
// corpus's walk i, and a fixed-seed training run is bit-identical across
// the two backings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "v2v/store/format.hpp"
#include "v2v/walk/corpus_reader.hpp"
#include "v2v/walk/walker.hpp"

namespace v2v::walk {

/// Version stamped into the manifest "smft" section (the container's own
/// version stays kSnapshotVersionSections).
inline constexpr std::uint64_t kSpoolFormatVersion = 1;

/// Paths inside a spool directory.
[[nodiscard]] std::string spool_manifest_path(const std::string& dir);
[[nodiscard]] std::string spool_segment_path(const std::string& dir,
                                             std::size_t index);

/// What generate_corpus_spooled wrote (bench sidecars export these).
struct SpoolStats {
  std::uint64_t segments = 0;
  std::uint64_t walks = 0;
  std::uint64_t tokens = 0;
  std::uint64_t max_token = 0;
  std::uint64_t bytes_written = 0;  ///< segment + manifest file bytes
};

/// Runs the same deterministic sharded walk generation as generate_corpus
/// but streams every chunk's walks into `config.spool_dir/seg-<chunk>`
/// through a bounded buffer (config.spool_buffer_mb) instead of holding
/// the corpus in RAM, then writes the manifest. The directory is created
/// if needed; pre-existing spool files are overwritten. Throws
/// std::invalid_argument when config.spool_dir is empty and
/// store::SnapshotError on I/O failure.
SpoolStats generate_corpus_spooled(const graph::Graph& g,
                                   const WalkConfig& config,
                                   std::uint64_t seed);

/// A spool directory opened for training: every segment is validated
/// (container checksums) and served zero-copy when mmap is available,
/// through owning buffers otherwise (V2V_STORE_NO_MMAP=1 or
/// MapMode::kBuffered force the latter). walk(i) is a span into the
/// mapping — no per-walk copies. Move-only.
class SpooledCorpus final : public CorpusReader {
 public:
  [[nodiscard]] static SpooledCorpus open(
      const std::string& dir,
      store::MapMode mode = store::MapMode::kAuto);

  SpooledCorpus(SpooledCorpus&&) noexcept = default;
  SpooledCorpus& operator=(SpooledCorpus&&) noexcept = default;

  [[nodiscard]] std::size_t walk_count() const noexcept override {
    return total_walks_;
  }
  [[nodiscard]] std::size_t token_count() const noexcept override {
    return total_tokens_;
  }
  [[nodiscard]] std::span<const graph::VertexId> walk(
      std::size_t i) const noexcept override;
  [[nodiscard]] graph::VertexId max_token() const noexcept override {
    return max_token_;
  }
  [[nodiscard]] std::vector<std::uint64_t> vertex_frequencies(
      std::size_t vocab) const override;
  /// madvise(WILLNEED)s the token bytes of walks [begin, end) on mapped
  /// segments so the trainer's next chunk streams from warmed pages.
  void prefetch(std::size_t begin, std::size_t end) const override;

  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segments_.size();
  }
  /// True when every segment is served from an mmap (no owning copies).
  [[nodiscard]] bool zero_copy() const noexcept;

 private:
  struct Segment {
    store::MappedSnapshot snap;
    std::span<const graph::VertexId> tokens;
    std::span<const std::uint64_t> offsets;  ///< walks + 1 entries
    std::size_t first_walk = 0;  ///< global index of this segment's walk 0
  };

  SpooledCorpus() = default;

  std::vector<Segment> segments_;
  std::vector<std::uint64_t> freq_;  ///< manifest "sfrq", size max_token+1
  std::size_t total_walks_ = 0;
  std::size_t total_tokens_ = 0;
  graph::VertexId max_token_ = 0;
};

}  // namespace v2v::walk
