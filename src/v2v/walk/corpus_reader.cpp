#include "v2v/walk/corpus_reader.hpp"

#include <algorithm>

namespace v2v::walk {

void CorpusReader::prefetch(std::size_t /*begin*/, std::size_t /*end*/) const {}

graph::VertexId InMemoryCorpus::max_token() const noexcept {
  const auto tokens = corpus_.tokens();
  if (tokens.empty()) return 0;
  return *std::max_element(tokens.begin(), tokens.end());
}

}  // namespace v2v::walk
