// Read-only corpus abstraction the trainer iterates. Two implementations:
// InMemoryCorpus wraps the classic RAM-resident walk::Corpus, and
// SpooledCorpus (corpus_spool.hpp) serves walks straight out of mmap'd
// disk segments. The trainer's chunk geometry depends only on
// walk_count(), so a fixed-seed run produces the same epoch_loss
// trajectory whichever implementation backs it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "v2v/walk/corpus.hpp"

namespace v2v::walk {

class CorpusReader {
 public:
  virtual ~CorpusReader() = default;

  [[nodiscard]] virtual std::size_t walk_count() const noexcept = 0;
  [[nodiscard]] virtual std::size_t token_count() const noexcept = 0;

  /// Tokens of walk `i` (i < walk_count()); the span stays valid for the
  /// reader's lifetime.
  [[nodiscard]] virtual std::span<const graph::VertexId> walk(
      std::size_t i) const noexcept = 0;

  /// Largest token id present (0 when the corpus has no tokens — check
  /// token_count() to tell the two apart). The trainer validates vocab
  /// bounds against this instead of rescanning every token.
  [[nodiscard]] virtual graph::VertexId max_token() const noexcept = 0;

  /// Occurrence count per vertex id in [0, vocab); ids >= vocab ignored.
  [[nodiscard]] virtual std::vector<std::uint64_t> vertex_frequencies(
      std::size_t vocab) const = 0;

  /// Locality hint: a worker is about to iterate walks [begin, end) in
  /// order. Disk-backed readers use it to madvise/prefetch the byte range;
  /// the in-RAM reader ignores it.
  virtual void prefetch(std::size_t begin, std::size_t end) const;
};

/// CorpusReader over a RAM-resident Corpus. Non-owning: the corpus must
/// outlive the reader (the trainer holds both on its stack).
class InMemoryCorpus final : public CorpusReader {
 public:
  explicit InMemoryCorpus(const Corpus& corpus) : corpus_(corpus) {}
  /// Binding a temporary would dangle; reject it at compile time.
  explicit InMemoryCorpus(Corpus&&) = delete;

  [[nodiscard]] std::size_t walk_count() const noexcept override {
    return corpus_.walk_count();
  }
  [[nodiscard]] std::size_t token_count() const noexcept override {
    return corpus_.token_count();
  }
  [[nodiscard]] std::span<const graph::VertexId> walk(
      std::size_t i) const noexcept override {
    return corpus_.walk(i);
  }
  [[nodiscard]] graph::VertexId max_token() const noexcept override;
  [[nodiscard]] std::vector<std::uint64_t> vertex_frequencies(
      std::size_t vocab) const override {
    return corpus_.vertex_frequencies(vocab);
  }

 private:
  const Corpus& corpus_;
};

}  // namespace v2v::walk
