// Second-order (node2vec-style) biased random walks — Grover & Leskovec
// 2016, the paper's related work [10]. The next step from v (having
// arrived from t) weights each candidate x by
//     1/p  if x == t           (return)
//     1    if x is adjacent to t (BFS-ish / stay local)
//     1/q  otherwise           (DFS-ish / explore outward)
// p = q = 1 degenerates to the first-order uniform walk. Implemented with
// rejection sampling against max(1/p, 1, 1/q), the standard trick that
// avoids per-(edge,edge) alias tables, with sorted adjacency for O(log d)
// neighbor membership tests.
#pragma once

#include <cstdint>
#include <vector>

#include "v2v/common/rng.hpp"
#include "v2v/graph/graph.hpp"
#include "v2v/walk/corpus.hpp"

namespace v2v::walk {

struct Node2VecConfig {
  std::size_t walks_per_vertex = 10;
  std::size_t walk_length = 80;
  double p = 1.0;  ///< return parameter (larger = less backtracking)
  double q = 1.0;  ///< in-out parameter (smaller = more exploration)
  std::size_t threads = 1;
  /// Start vertices per dynamic work-queue chunk; 0 = auto.
  std::size_t grain = 0;
};

class Node2VecWalker {
 public:
  Node2VecWalker(const graph::Graph& g, const Node2VecConfig& config);
  /// The walker keeps a reference to the graph; binding a temporary would
  /// dangle, so it is rejected at compile time.
  Node2VecWalker(graph::Graph&&, const Node2VecConfig&) = delete;

  /// Appends one second-order walk from `start` into `out`.
  void walk_from(graph::VertexId start, Rng& rng,
                 std::vector<graph::VertexId>& out) const;

  [[nodiscard]] const Node2VecConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] bool adjacent(graph::VertexId u, graph::VertexId v) const noexcept;

  const graph::Graph& graph_;
  Node2VecConfig config_;
  /// Sorted copy of each adjacency list for binary-search membership.
  std::vector<std::vector<graph::VertexId>> sorted_neighbors_;
  double max_weight_ = 1.0;
};

/// Runs node2vec walks from every vertex; deterministic per (graph,
/// config, seed) including under multithreading.
[[nodiscard]] Corpus generate_corpus_node2vec(const graph::Graph& g,
                                              const Node2VecConfig& config,
                                              std::uint64_t seed);

}  // namespace v2v::walk
