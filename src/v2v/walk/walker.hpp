// Constrained random walks (paper §II-A).
//
// Starting from every vertex, the walker runs `walks_per_vertex`
// independent walks of up to `walk_length` vertices. Steps can be biased
// and constrained:
//   - Uniform          : uniform over out-neighbors (the basic walk)
//   - EdgeWeight       : probability proportional to the arc weight
//   - VertexWeight     : probability proportional to the target's weight
// Direction is always respected: on a directed graph only out-arcs are
// followed and a walk terminates early at a dead end. If the graph carries
// timestamps and `temporal` is set, consecutive arcs must have
// non-decreasing timestamps; `time_window > 0` additionally bounds the gap
// between consecutive arc timestamps.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "v2v/common/rng.hpp"
#include "v2v/graph/graph.hpp"
#include "v2v/walk/alias_table.hpp"
#include "v2v/walk/corpus.hpp"

namespace v2v::obs {
class MetricsRegistry;
}  // namespace v2v::obs

namespace v2v::walk {

enum class StepBias : std::uint8_t { kUniform, kEdgeWeight, kVertexWeight };

struct WalkConfig {
  /// Walks started per vertex (count; paper t = 1000, default 10).
  std::size_t walks_per_vertex = 10;
  /// Maximum vertices per walk, including the start (count; paper
  /// ℓ = 1000, default 80 — dead ends cut walks short).
  std::size_t walk_length = 80;
  /// Per-step transition bias (paper §II-A; default: uniform over
  /// out-neighbors).
  StepBias bias = StepBias::kUniform;
  /// Enforce non-decreasing arc timestamps along a walk (paper §II-A
  /// temporal constraint; off by default).
  bool temporal = false;
  /// Max timestamp gap between consecutive arcs, same unit as the graph's
  /// timestamps; <= 0 disables the window (default).
  double time_window = 0.0;
  /// Worker threads for corpus generation (count; default 1 = serial).
  std::size_t threads = 1;
  /// Start vertices per work-queue chunk for dynamic scheduling; 0 (the
  /// default) picks default_grain(vertex_count, threads). Chunk boundaries
  /// — and therefore the corpus ordering — depend only on this value, not
  /// on the thread count.
  std::size_t grain = 0;
  /// Optional observability sink: generate_corpus records walk/step
  /// throughput counters, per-shard balance, and a "walk" stage span into
  /// it. Null (default) disables instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
  /// When non-empty, corpus generation spools to disk segments under this
  /// directory instead of materializing the corpus in RAM (see
  /// corpus_spool.hpp); empty (the default) keeps the in-memory path.
  std::string spool_dir;
  /// Per-shard token flush buffer for spooled generation, in MiB (peak
  /// generation RSS is O(workers * this), independent of corpus size).
  /// 0 falls back to the 64 MiB default.
  std::size_t spool_buffer_mb = 64;
};

/// Runs walks from all start vertices and returns the merged corpus.
/// Deterministic for a fixed (graph, config, seed) triple, including under
/// multithreading: each start vertex owns an independent RNG stream.
[[nodiscard]] Corpus generate_corpus(const graph::Graph& g, const WalkConfig& config,
                                     std::uint64_t seed);

/// Stateful walker; reusable across walks, owns the per-vertex alias
/// tables for weight-biased stepping.
class Walker {
 public:
  Walker(const graph::Graph& g, const WalkConfig& config);
  /// The walker keeps a reference to the graph; binding a temporary would
  /// dangle, so it is rejected at compile time.
  Walker(graph::Graph&&, const WalkConfig&) = delete;

  /// Appends one walk from `start` into `out` (cleared first). The walk
  /// contains at least the start vertex.
  void walk_from(graph::VertexId start, Rng& rng,
                 std::vector<graph::VertexId>& out) const;

  [[nodiscard]] const WalkConfig& config() const noexcept { return config_; }

 private:
  /// Picks the next vertex from `current` given the previous arc
  /// timestamp; nullopt when no admissible arc exists.
  [[nodiscard]] std::optional<std::pair<graph::VertexId, double>> step(
      graph::VertexId current, double prev_timestamp, Rng& rng) const;

  const graph::Graph& graph_;
  WalkConfig config_;
  /// One alias table per vertex with >=1 out-arc, for static biased steps.
  std::vector<AliasTable> alias_;
  bool use_alias_ = false;
  bool constrained_ = false;  // temporal filtering required per step
};

}  // namespace v2v::walk
