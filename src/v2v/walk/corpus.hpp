// A corpus of vertex sequences ("sentences") produced by random walks.
// Stored flat (tokens + offsets) so the CBOW trainer streams it with zero
// pointer chasing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "v2v/graph/graph.hpp"

namespace v2v::walk {

class Corpus {
 public:
  Corpus() = default;

  void reserve(std::size_t walks, std::size_t tokens) {
    offsets_.reserve(walks + 1);
    tokens_.reserve(tokens);
  }

  void add_walk(std::span<const graph::VertexId> walk) {
    tokens_.insert(tokens_.end(), walk.begin(), walk.end());
    offsets_.push_back(tokens_.size());
  }

  /// Appends all walks of `other` (used to merge per-thread shards).
  void append(const Corpus& other);

  /// Move-append: as above, but steals `other`'s token storage (taking it
  /// wholesale when this corpus is still empty) and leaves `other` empty.
  /// Shard merging uses this so peak memory is one corpus, not two.
  void append(Corpus&& other);

  [[nodiscard]] std::size_t walk_count() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t token_count() const noexcept { return tokens_.size(); }

  [[nodiscard]] std::span<const graph::VertexId> walk(std::size_t i) const noexcept {
    return {tokens_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }

  [[nodiscard]] std::span<const graph::VertexId> tokens() const noexcept { return tokens_; }

  /// Occurrence count per vertex id in [0, vocab); ids >= vocab are ignored.
  [[nodiscard]] std::vector<std::uint64_t> vertex_frequencies(std::size_t vocab) const;

 private:
  std::vector<graph::VertexId> tokens_;
  std::vector<std::size_t> offsets_{0};
};

}  // namespace v2v::walk
