#include "v2v/walk/second_order.hpp"

#include <algorithm>
#include <stdexcept>

#include "v2v/common/thread_pool.hpp"

namespace v2v::walk {

Node2VecWalker::Node2VecWalker(const graph::Graph& g, const Node2VecConfig& config)
    : graph_(g), config_(config) {
  if (config_.walk_length == 0) {
    throw std::invalid_argument("node2vec: walk_length must be >= 1");
  }
  if (config_.p <= 0.0 || config_.q <= 0.0) {
    throw std::invalid_argument("node2vec: p and q must be positive");
  }
  sorted_neighbors_.resize(g.vertex_count());
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto nbrs = g.neighbors(v);
    sorted_neighbors_[v].assign(nbrs.begin(), nbrs.end());
    std::sort(sorted_neighbors_[v].begin(), sorted_neighbors_[v].end());
  }
  max_weight_ = std::max({1.0, 1.0 / config_.p, 1.0 / config_.q});
}

bool Node2VecWalker::adjacent(graph::VertexId u, graph::VertexId v) const noexcept {
  const auto& nbrs = sorted_neighbors_[u];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void Node2VecWalker::walk_from(graph::VertexId start, Rng& rng,
                               std::vector<graph::VertexId>& out) const {
  out.clear();
  out.push_back(start);

  // First step is uniform (no previous vertex yet).
  auto first_nbrs = graph_.neighbors(start);
  if (first_nbrs.empty() || config_.walk_length == 1) return;
  graph::VertexId prev = start;
  graph::VertexId current = first_nbrs[rng.next_below(first_nbrs.size())];
  out.push_back(current);

  while (out.size() < config_.walk_length) {
    const auto nbrs = graph_.neighbors(current);
    if (nbrs.empty()) break;
    // Rejection sampling: draw a uniform candidate, accept with
    // probability weight(candidate) / max_weight.
    graph::VertexId next = 0;
    for (;;) {
      const graph::VertexId candidate = nbrs[rng.next_below(nbrs.size())];
      double weight;
      if (candidate == prev) {
        weight = 1.0 / config_.p;
      } else if (adjacent(prev, candidate)) {
        weight = 1.0;
      } else {
        weight = 1.0 / config_.q;
      }
      if (rng.next_double() * max_weight_ <= weight) {
        next = candidate;
        break;
      }
    }
    prev = current;
    current = next;
    out.push_back(current);
  }
}

Corpus generate_corpus_node2vec(const graph::Graph& g, const Node2VecConfig& config,
                                std::uint64_t seed) {
  const Node2VecWalker walker(g, config);
  const std::size_t n = g.vertex_count();
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  const std::size_t grain =
      config.grain != 0 ? config.grain : default_grain(n, threads);
  const std::size_t chunks = chunk_count(n, grain);

  // Same dynamic-queue shape as generate_corpus: per-chunk shards, merged
  // in chunk order, so the corpus ordering is independent of scheduling.
  std::vector<Corpus> shards(chunks);
  const Rng root(seed);
  parallel_for_dynamic(
      threads, n, grain,
      [&](std::size_t /*worker*/, std::size_t chunk, std::size_t begin,
          std::size_t end) {
        Corpus& shard = shards[chunk];
        std::vector<graph::VertexId> buffer;
        buffer.reserve(config.walk_length);
        for (std::size_t v = begin; v < end; ++v) {
          Rng rng = root.fork(v);
          for (std::size_t w = 0; w < config.walks_per_vertex; ++w) {
            walker.walk_from(static_cast<graph::VertexId>(v), rng, buffer);
            shard.add_walk(buffer);
          }
        }
      });

  if (chunks == 1) return std::move(shards[0]);
  Corpus merged;
  for (auto& shard : shards) merged.append(std::move(shard));
  return merged;
}

}  // namespace v2v::walk
