#include "v2v/walk/corpus.hpp"

namespace v2v::walk {

void Corpus::append(const Corpus& other) {
  const std::size_t base = tokens_.size();
  tokens_.insert(tokens_.end(), other.tokens_.begin(), other.tokens_.end());
  offsets_.reserve(offsets_.size() + other.walk_count());
  for (std::size_t i = 1; i < other.offsets_.size(); ++i) {
    offsets_.push_back(base + other.offsets_[i]);
  }
}

std::vector<std::uint64_t> Corpus::vertex_frequencies(std::size_t vocab) const {
  std::vector<std::uint64_t> freq(vocab, 0);
  for (const auto token : tokens_) {
    if (token < vocab) ++freq[token];
  }
  return freq;
}

}  // namespace v2v::walk
