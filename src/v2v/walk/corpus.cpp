#include "v2v/walk/corpus.hpp"

namespace v2v::walk {

void Corpus::append(const Corpus& other) {
  const std::size_t base = tokens_.size();
  tokens_.insert(tokens_.end(), other.tokens_.begin(), other.tokens_.end());
  offsets_.reserve(offsets_.size() + other.walk_count());
  for (std::size_t i = 1; i < other.offsets_.size(); ++i) {
    offsets_.push_back(base + other.offsets_[i]);
  }
}

void Corpus::append(Corpus&& other) {
  // Keying the wholesale steal on the *walk* count matters: a destination
  // holding only zero-length walks has no tokens, but replacing its
  // offsets would silently drop those walks.
  if (walk_count() == 0) {
    // Wholesale steal: no copy at all for the first shard.
    tokens_ = std::move(other.tokens_);
    offsets_ = std::move(other.offsets_);
  } else {
    const std::size_t base = tokens_.size();
    tokens_.insert(tokens_.end(), std::make_move_iterator(other.tokens_.begin()),
                   std::make_move_iterator(other.tokens_.end()));
    offsets_.reserve(offsets_.size() + other.walk_count());
    for (std::size_t i = 1; i < other.offsets_.size(); ++i) {
      offsets_.push_back(base + other.offsets_[i]);
    }
  }
  // Leave the source drained but valid (empty corpus invariant: offsets = {0}).
  other.tokens_.clear();
  other.tokens_.shrink_to_fit();
  other.offsets_.assign(1, 0);
}

std::vector<std::uint64_t> Corpus::vertex_frequencies(std::size_t vocab) const {
  std::vector<std::uint64_t> freq(vocab, 0);
  for (const auto token : tokens_) {
    if (token < vocab) ++freq[token];
  }
  return freq;
}

}  // namespace v2v::walk
