// The snapshot *container* format, independent of what the payloads mean:
// magic + checksummed fixed header, the v2 named-section table, the mmap
// reader with buffered fallback, and the writers. This layer depends only
// on common/ so anything in the tree (the walk layer's corpus spool, the
// quantized indexes, the trainer-state store) can persist checksummed
// sections without pulling in the embedding types; store/snapshot.hpp
// layers the embedding-level API (EmbeddingStore / MappedEmbedding) on
// top.
//
// On-disk layout (all integers little-endian; see docs/ARCHITECTURE.md):
//
//   offset 0   magic      "V2VSNAP1"                      8 bytes
//          8   version    u32
//         12   dtype      u16 (1 = float32, 0 = none/sections-only)
//         14   endian     u16 (0x0102, detects byte-swapped files)
//         16   rows       u64
//         24   dims       u64
//         32   row_stride u64  floats per row on disk (>= dims)
//         40   data_offset u64 (64-byte aligned)
//         48   data_bytes  u64 (= rows * row_stride * 4, or 0)
//         56   data_checksum   u64  FNV-1a 64 over the row region
//         64   header_checksum u64  FNV-1a 64 over bytes [0, 64)
//
// v2+ files append a checksummed section table at byte 72 (see
// SnapshotSection). Every malformed input fails with a typed
// SnapshotError (never UB), so corrupt files are diagnosable and the
// corruption test matrices can assert exact error codes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "v2v/store/embedding_view.hpp"

namespace v2v::store {

inline constexpr std::uint32_t kSnapshotVersion = 1;
/// Version 2 appends a checksummed section table (quantized payloads) at
/// byte 72; the fixed header is unchanged, so v1 readers of the float
/// region keep working on v2 files that carry floats.
inline constexpr std::uint32_t kSnapshotVersionSections = 2;
/// Version 3 adds optional trainer/optimizer-state sections ("tsyn1",
/// "tfreq", "tlrst" — see store/trainer_state.hpp) on top of the v2
/// section machinery. The layout is byte-identical to v2; the version
/// bump only signals "this file can warm-start continued SGD", so v1/v2
/// files keep loading and v2 readers that ignore unknown sections would
/// still serve the floats.
inline constexpr std::uint32_t kSnapshotVersionTrainerState = 3;
inline constexpr std::uint16_t kDtypeFloat32 = 1;
/// v2 only: the snapshot carries no float matrix (quantized payloads or a
/// corpus spool segment); rows/dims still describe the logical shape,
/// row_stride/data_bytes are 0.
inline constexpr std::uint16_t kDtypeNone = 0;
inline constexpr std::uint16_t kEndianTag = 0x0102;

/// FNV-1a 64-bit over a byte range. Exposed so tests can forge valid
/// checksums when building corruption cases.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t bytes) noexcept;

/// Incremental FNV-1a 64: seed with fnv1a64_seed(), fold ranges in order
/// with fnv1a64_accumulate(). Equal to fnv1a64 over the concatenation —
/// this is how the streaming writers checksum payloads they never hold in
/// memory at once.
[[nodiscard]] constexpr std::uint64_t fnv1a64_seed() noexcept {
  return 0xcbf29ce484222325ULL;
}
[[nodiscard]] std::uint64_t fnv1a64_accumulate(std::uint64_t state, const void* data,
                                               std::size_t bytes) noexcept;

enum class SnapshotErrorCode : std::uint8_t {
  kOpenFailed,              ///< file missing or unreadable/unwritable
  kTruncatedHeader,         ///< shorter than the fixed header
  kBadMagic,                ///< not a snapshot file
  kHeaderChecksumMismatch,  ///< header bytes corrupted
  kBadVersion,              ///< written by an unknown format revision
  kBadDtype,                ///< element type this build cannot serve
  kBadEndianness,           ///< byte-swapped producer
  kBadHeader,               ///< internally inconsistent header fields
  kTruncatedData,           ///< file shorter than header promises
  kDataChecksumMismatch,    ///< row region corrupted
  kBadSectionTable,         ///< v2 section table malformed or truncated
  kSectionChecksumMismatch, ///< a section payload is corrupted
};

[[nodiscard]] const char* snapshot_error_name(SnapshotErrorCode code) noexcept;

/// Every failure of the snapshot layer throws this; `code()` makes the
/// failure mode machine-checkable (corruption matrix tests, CLI exit
/// messages).
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapshotErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] SnapshotErrorCode code() const noexcept { return code_; }

 private:
  SnapshotErrorCode code_;
};

/// Throws SnapshotError with the uniform "snapshot: <origin>: <detail>
/// [<code name>]" message every reader/writer in this layer uses.
[[noreturn]] void throw_snapshot_error(SnapshotErrorCode code,
                                       const std::string& origin,
                                       const std::string& detail);

/// Decoded fixed header of a snapshot file.
struct SnapshotHeader {
  std::uint32_t version = kSnapshotVersion;
  std::uint16_t dtype = kDtypeFloat32;
  std::uint64_t rows = 0;
  std::uint64_t dims = 0;
  std::uint64_t row_stride = 0;
  std::uint64_t data_offset = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t data_checksum = 0;
};

/// Size of the fixed header on disk (magic through header_checksum).
inline constexpr std::size_t kSnapshotHeaderBytes = 72;

/// Validates and decodes the fixed header from an in-memory byte range
/// (at least the first kSnapshotHeaderBytes of a purported snapshot).
/// `file_size` is the total size of the purported file, checked against
/// the region the header promises. Throws SnapshotError with the same
/// typed codes as the file-based readers; `origin` names the source in
/// error messages. This is the single validator behind
/// read_header/load/MappedEmbedding::open for untrusted bytes — and the
/// entry point fuzz/fuzz_snapshot.cpp drives.
[[nodiscard]] SnapshotHeader decode_snapshot_header(
    std::span<const std::uint8_t> bytes, std::uint64_t file_size,
    const std::string& origin = "<memory>");

/// Serializes `h` into a kSnapshotHeaderBytes buffer, magic and header
/// checksum included (the endian tag is stamped for this host). Inverse
/// of decode_snapshot_header; tests use it to forge headers for the
/// corruption matrices.
void encode_snapshot_header(const SnapshotHeader& h,
                            std::span<std::uint8_t> out) noexcept;

/// Reads and validates the fixed header from an open binary stream,
/// leaving it positioned at byte kSnapshotHeaderBytes; `origin` names the
/// file in error messages.
[[nodiscard]] SnapshotHeader read_snapshot_header(std::istream& in,
                                                  const std::string& origin);

/// Opens `path` and validates just the fixed header (cheap metadata probe).
[[nodiscard]] SnapshotHeader read_snapshot_header(const std::string& path);

/// True when V2V_STORE_NO_MMAP is set non-empty/non-zero: every mmap-capable
/// reader then takes its buffered fallback (how that path is tested).
[[nodiscard]] bool mmap_disabled_by_env() noexcept;

/// How a reader backs its data: kAuto maps the file when the platform has
/// mmap (and the env override is unset), kBuffered forces the owning-copy
/// path with identical observable behaviour.
enum class MapMode : std::uint8_t { kAuto, kBuffered };

/// One entry of a v2 section table: a named, checksummed byte range.
///
/// v2 on-disk layout, after the unchanged 72-byte fixed header:
///
///   offset 72      section_count u32, reserved u32 (0)
///          80      section_count entries of 32 bytes each:
///                    name[8] (NUL-padded), offset u64, bytes u64,
///                    checksum u64 (FNV-1a 64 over the payload)
///          80+32n  table_checksum u64 (FNV-1a 64 over bytes [72, 80+32n))
///   payloads       each 64-byte aligned; when a float matrix is present
///                  it is the "fmat" section and the fixed header's
///                  data_offset/data_bytes/data_checksum mirror its entry,
///                  so MappedEmbedding reads v2-with-floats unchanged.
struct SnapshotSection {
  std::string name;  ///< up to 8 bytes, e.g. "fmat", "pqbk", "ctok"
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
};

/// Writes a v2 snapshot: optional float matrix plus arbitrary named
/// sections, every payload checksummed and 64-byte aligned. Payloads are
/// buffered in memory until `write` — use StreamingSnapshotWriter when the
/// payloads must not be resident all at once.
class SnapshotBuilder {
 public:
  /// Logical corpus shape (rows x dims), independent of which payloads
  /// are attached.
  SnapshotBuilder(std::uint64_t rows, std::uint64_t dims)
      : rows_(rows), dims_(dims) {}

  /// Attaches the float matrix as the "fmat" section (row-padded exactly
  /// like EmbeddingStore::save, so the mmap path stays 64-byte aligned).
  void set_float_matrix(const EmbeddingView& view);

  /// Adds a named section (name must be 1..8 bytes and unique).
  void add_section(const std::string& name,
                   std::vector<std::uint8_t> payload);

  /// Raises the version stamped into the header (attaching trainer state
  /// requires v3 so old tools fail loudly instead of silently dropping
  /// the optimizer state on a rewrite). The builder never writes below
  /// kSnapshotVersionSections.
  void set_min_version(std::uint32_t version);

  /// Serializes everything to `path`.
  void write(const std::string& path) const;

 private:
  std::uint64_t rows_;
  std::uint64_t dims_;
  std::uint64_t row_stride_ = 0;  ///< nonzero iff a float matrix is attached
  std::uint32_t min_version_ = kSnapshotVersionSections;
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

/// Streams a v2 sections-only snapshot (dtype none) to disk without ever
/// buffering a payload in memory — the writer behind the corpus spool,
/// where a segment can exceed RAM. Section names are declared up front
/// (the table layout needs the count); bytes are appended to the current
/// section and checksummed incrementally; next_section() seals one and
/// starts the next, in declared order. finish() seeks back and writes the
/// real header + table — the file is not a valid snapshot until then.
/// The emitted bytes are exactly what SnapshotBuilder would produce for
/// the same payloads, so MappedSnapshot reads both identically.
class StreamingSnapshotWriter {
 public:
  StreamingSnapshotWriter(const std::string& path,
                          std::vector<std::string> section_names);
  StreamingSnapshotWriter(const StreamingSnapshotWriter&) = delete;
  StreamingSnapshotWriter& operator=(const StreamingSnapshotWriter&) = delete;
  /// Closing without finish() leaves an invalid file on disk (deliberate:
  /// a crashed producer must not look like a complete spool segment).
  ~StreamingSnapshotWriter() = default;

  /// Appends bytes to the current section.
  void append(const void* data, std::size_t bytes);
  void append(std::span<const std::uint8_t> bytes) {
    append(bytes.data(), bytes.size());
  }

  /// Seals the current section and starts the next declared one.
  void next_section();

  /// Seals the last section and writes the fixed header (rows/dims are
  /// the logical shape stamped into it) plus the checksummed section
  /// table. Must be called with every declared section written.
  void finish(std::uint64_t rows, std::uint64_t dims,
              std::uint32_t version = kSnapshotVersionSections);

  /// Total file bytes emitted so far (header/table region included).
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return cursor_; }

 private:
  void seal_current();

  std::string path_;
  std::ofstream out_;
  std::vector<std::string> names_;
  std::vector<SnapshotSection> sealed_;
  std::size_t current_ = 0;
  std::uint64_t cursor_ = 0;          ///< absolute end-of-file offset
  std::uint64_t section_offset_ = 0;  ///< current section's start offset
  std::uint64_t section_bytes_ = 0;
  std::uint64_t section_checksum_ = fnv1a64_seed();
  bool finished_ = false;
};

/// A v2 (or v1) snapshot opened for serving with all sections validated.
/// On POSIX the whole file is mmapped read-only and `section()` spans point
/// straight into the mapping; elsewhere (or under V2V_STORE_NO_MMAP=1 /
/// MapMode kBuffered) the file is read into an owning buffer. A v1 file
/// appears as a single synthetic "fmat" section, so callers can treat both
/// versions uniformly. Move-only.
class MappedSnapshot {
 public:
  using MapMode = store::MapMode;

  /// Opens and fully validates `path`: header, section table, and every
  /// section checksum (faults each page exactly once, doubling as warm-up).
  [[nodiscard]] static MappedSnapshot open(const std::string& path,
                                           MapMode mode = MapMode::kAuto);

  MappedSnapshot(MappedSnapshot&& other) noexcept;
  MappedSnapshot& operator=(MappedSnapshot&& other) noexcept;
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;
  ~MappedSnapshot();

  [[nodiscard]] std::size_t rows() const noexcept { return header_.rows; }
  [[nodiscard]] std::size_t dimensions() const noexcept { return header_.dims; }
  [[nodiscard]] const SnapshotHeader& header() const noexcept { return header_; }
  [[nodiscard]] const std::vector<SnapshotSection>& sections() const noexcept {
    return sections_;
  }
  [[nodiscard]] bool has_section(const std::string& name) const noexcept;
  /// Checksum-verified payload bytes; throws SnapshotError(kBadHeader) if
  /// the section is absent — probe with has_section first.
  [[nodiscard]] std::span<const std::uint8_t> section(
      const std::string& name) const;

  /// True when the snapshot carries a float matrix ("fmat" / v1 rows).
  [[nodiscard]] bool has_floats() const noexcept {
    return header_.dtype == kDtypeFloat32;
  }
  /// View over the float matrix; V2V_CHECKs has_floats().
  [[nodiscard]] EmbeddingView float_view() const noexcept;
  [[nodiscard]] bool zero_copy() const noexcept { return map_base_ != nullptr; }

 private:
  MappedSnapshot() = default;
  void reset() noexcept;
  [[nodiscard]] const std::uint8_t* base() const noexcept;

  SnapshotHeader header_;
  std::vector<SnapshotSection> sections_;
  void* map_base_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::vector<std::uint8_t> buffer_;  ///< fallback storage
  std::size_t file_bytes_ = 0;
};

}  // namespace v2v::store
