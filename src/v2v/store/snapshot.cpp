#include "v2v/store/snapshot.hpp"

#include <algorithm>
#include <fstream>
#include <utility>
#include <vector>

#include "v2v/common/matrix.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define V2V_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define V2V_STORE_HAS_MMAP 0
#endif

namespace v2v::store {
namespace {

constexpr std::size_t kHeaderBytes = kSnapshotHeaderBytes;
constexpr std::size_t kDataOffset = 128;  // what this writer emits; 64-aligned

[[noreturn]] void fail(SnapshotErrorCode code, const std::string& path,
                       const std::string& detail) {
  throw_snapshot_error(code, path, detail);
}

}  // namespace

void EmbeddingStore::save(const embed::Embedding& embedding,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open for writing");

  SnapshotHeader h;
  h.rows = embedding.vertex_count();
  h.dims = embedding.dimensions();
  h.row_stride = MatrixF::padded_stride(h.dims);
  h.data_offset = kDataOffset;
  h.data_bytes = h.rows * h.row_stride * sizeof(float);

  // Reserve the header region, stream the rows while folding the data
  // checksum, then come back and write the real header.
  const std::vector<char> zeros(kDataOffset, 0);
  out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));

  std::vector<float> rowbuf(h.row_stride, 0.0f);
  std::uint64_t checksum = fnv1a64_seed();
  for (std::size_t v = 0; v < h.rows; ++v) {
    const auto r = embedding.vector(v);
    std::copy(r.begin(), r.end(), rowbuf.begin());
    const std::size_t bytes = h.row_stride * sizeof(float);
    checksum = fnv1a64_accumulate(checksum, rowbuf.data(), bytes);
    out.write(reinterpret_cast<const char*>(rowbuf.data()),
              static_cast<std::streamsize>(bytes));
  }
  h.data_checksum = checksum;

  std::uint8_t header[kHeaderBytes];
  encode_snapshot_header(h, header);
  out.seekp(0);
  out.write(reinterpret_cast<const char*>(header), kHeaderBytes);
  out.flush();
  if (!out) fail(SnapshotErrorCode::kOpenFailed, path, "write failed");
}

SnapshotHeader EmbeddingStore::read_header(const std::string& path) {
  return read_snapshot_header(path);
}

embed::Embedding EmbeddingStore::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open");
  const SnapshotHeader h = read_snapshot_header(in, path);
  if (h.dtype != kDtypeFloat32) {
    fail(SnapshotErrorCode::kBadDtype, path, "snapshot carries no float matrix");
  }

  embed::Embedding out(h.rows, h.dims);
  in.seekg(static_cast<std::streamoff>(h.data_offset));
  std::vector<float> rowbuf(h.row_stride);
  std::uint64_t checksum = fnv1a64_seed();
  for (std::size_t v = 0; v < h.rows; ++v) {
    const std::size_t bytes = h.row_stride * sizeof(float);
    in.read(reinterpret_cast<char*>(rowbuf.data()),
            static_cast<std::streamsize>(bytes));
    if (!in) fail(SnapshotErrorCode::kTruncatedData, path, "short row read");
    checksum = fnv1a64_accumulate(checksum, rowbuf.data(), bytes);
    const auto dst = out.vector(v);
    std::copy(rowbuf.begin(), rowbuf.begin() + static_cast<std::ptrdiff_t>(h.dims),
              dst.begin());
  }
  if (checksum != h.data_checksum) {
    fail(SnapshotErrorCode::kDataChecksumMismatch, path,
         "data checksum mismatch");
  }
  return out;
}

MappedEmbedding MappedEmbedding::open(const std::string& path, MapMode mode) {
  SnapshotHeader h = read_snapshot_header(path);
  if (h.dtype != kDtypeFloat32) {
    fail(SnapshotErrorCode::kBadDtype, path, "snapshot carries no float matrix");
  }

  MappedEmbedding out;
  out.header_ = h;
  const std::size_t total_bytes =
      static_cast<std::size_t>(h.data_offset + h.data_bytes);

#if V2V_STORE_HAS_MMAP
  if (mode == MapMode::kAuto && !mmap_disabled_by_env() && h.data_bytes > 0) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      void* base = ::mmap(nullptr, total_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);  // the mapping keeps its own reference
      if (base != MAP_FAILED) {
        out.map_base_ = base;
        out.map_bytes_ = total_bytes;
        const auto* data = reinterpret_cast<const float*>(
            static_cast<const unsigned char*>(base) + h.data_offset);
        out.view_ = EmbeddingView(data, h.rows, h.dims, h.row_stride);
        // Validate in place; this faults every page exactly once, which
        // doubles as index warm-up for the common open-then-build flow.
        const std::uint64_t checksum = fnv1a64(data, h.data_bytes);
        if (checksum != h.data_checksum) {
          fail(SnapshotErrorCode::kDataChecksumMismatch, path,
               "data checksum mismatch");
        }
        return out;
      }
      // mmap refused (e.g. exotic filesystem): fall through to the
      // buffered path rather than failing a readable file.
    }
  }
#endif
  (void)mode;
  (void)total_bytes;

  // Buffered fallback: identical observable behaviour, rows owned.
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open");
  in.seekg(static_cast<std::streamoff>(h.data_offset));
  out.buffer_.resize(static_cast<std::size_t>(h.rows * h.row_stride));
  if (!out.buffer_.empty()) {
    in.read(reinterpret_cast<char*>(out.buffer_.data()),
            static_cast<std::streamsize>(h.data_bytes));
    if (!in) fail(SnapshotErrorCode::kTruncatedData, path, "short data read");
  }
  const std::uint64_t checksum = fnv1a64(out.buffer_.data(), h.data_bytes);
  if (checksum != h.data_checksum) {
    fail(SnapshotErrorCode::kDataChecksumMismatch, path,
         "data checksum mismatch");
  }
  out.view_ = EmbeddingView(out.buffer_.data(), h.rows, h.dims, h.row_stride);
  return out;
}

MappedEmbedding::MappedEmbedding(MappedEmbedding&& other) noexcept
    : header_(other.header_),
      view_(other.view_),
      map_base_(std::exchange(other.map_base_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      buffer_(std::move(other.buffer_)) {
  other.view_ = EmbeddingView();
}

MappedEmbedding& MappedEmbedding::operator=(MappedEmbedding&& other) noexcept {
  if (this != &other) {
    reset();
    header_ = other.header_;
    view_ = other.view_;
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    buffer_ = std::move(other.buffer_);
    other.view_ = EmbeddingView();
  }
  return *this;
}

MappedEmbedding::~MappedEmbedding() { reset(); }

void MappedEmbedding::reset() noexcept {
#if V2V_STORE_HAS_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_bytes_);
#endif
  map_base_ = nullptr;
  map_bytes_ = 0;
  buffer_.clear();
  view_ = EmbeddingView();
}

void convert_text_to_snapshot(const std::string& text_path,
                              const std::string& snapshot_path) {
  EmbeddingStore::save(embed::Embedding::load_text_file(text_path), snapshot_path);
}

void convert_snapshot_to_text(const std::string& snapshot_path,
                              const std::string& text_path) {
  EmbeddingStore::load(snapshot_path).save_text_file(text_path);
}

}  // namespace v2v::store
