#include "v2v/store/snapshot.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>
#include <vector>

#include "v2v/common/matrix.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define V2V_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define V2V_STORE_HAS_MMAP 0
#endif

namespace v2v::store {
namespace {

constexpr char kMagic[8] = {'V', '2', 'V', 'S', 'N', 'A', 'P', '1'};
constexpr std::size_t kHeaderBytes = 72;   // fixed fields + header checksum
constexpr std::size_t kDataOffset = 128;   // what this writer emits; 64-aligned

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

std::uint64_t fnv1a64_accumulate(std::uint64_t state, const void* data,
                                 std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    state ^= p[i];
    state *= kFnvPrime;
  }
  return state;
}

template <typename T>
void put(unsigned char* buf, std::size_t offset, T value) noexcept {
  std::memcpy(buf + offset, &value, sizeof(T));
}

template <typename T>
[[nodiscard]] T get(const unsigned char* buf, std::size_t offset) noexcept {
  T value;
  std::memcpy(&value, buf + offset, sizeof(T));
  return value;
}

[[noreturn]] void fail(SnapshotErrorCode code, const std::string& path,
                       const std::string& detail) {
  throw SnapshotError(code, "snapshot: " + path + ": " + detail + " [" +
                                snapshot_error_name(code) + "]");
}

struct RawHeader {
  SnapshotHeader decoded;
  unsigned char bytes[kHeaderBytes];
};

/// Serializes `h` (checksum over the first 64 bytes goes last).
void encode_header(const SnapshotHeader& h, unsigned char* buf) noexcept {
  std::memcpy(buf, kMagic, sizeof(kMagic));
  put<std::uint32_t>(buf, 8, h.version);
  put<std::uint16_t>(buf, 12, h.dtype);
  put<std::uint16_t>(buf, 14, kEndianTag);
  put<std::uint64_t>(buf, 16, h.rows);
  put<std::uint64_t>(buf, 24, h.dims);
  put<std::uint64_t>(buf, 32, h.row_stride);
  put<std::uint64_t>(buf, 40, h.data_offset);
  put<std::uint64_t>(buf, 48, h.data_bytes);
  put<std::uint64_t>(buf, 56, h.data_checksum);
  put<std::uint64_t>(buf, 64, fnv1a64(buf, 64));
}

/// Reads and validates the fixed header; also checks the total file size
/// against what the header promises. The stream is left positioned at
/// byte kHeaderBytes.
SnapshotHeader read_header_stream(std::istream& in, const std::string& path) {
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  unsigned char buf[kHeaderBytes];
  in.read(reinterpret_cast<char*>(buf), kHeaderBytes);
  const auto got = !in ? std::size_t{0} : static_cast<std::size_t>(in.gcount());
  return decode_snapshot_header({buf, got}, file_size, path);
}

[[nodiscard]] bool mmap_disabled_by_env() noexcept {
  const char* env = std::getenv("V2V_STORE_NO_MMAP");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t bytes) noexcept {
  return fnv1a64_accumulate(kFnvOffsetBasis, data, bytes);
}

const char* snapshot_error_name(SnapshotErrorCode code) noexcept {
  switch (code) {
    case SnapshotErrorCode::kOpenFailed: return "open_failed";
    case SnapshotErrorCode::kTruncatedHeader: return "truncated_header";
    case SnapshotErrorCode::kBadMagic: return "bad_magic";
    case SnapshotErrorCode::kHeaderChecksumMismatch: return "header_checksum_mismatch";
    case SnapshotErrorCode::kBadVersion: return "bad_version";
    case SnapshotErrorCode::kBadDtype: return "bad_dtype";
    case SnapshotErrorCode::kBadEndianness: return "bad_endianness";
    case SnapshotErrorCode::kBadHeader: return "bad_header";
    case SnapshotErrorCode::kTruncatedData: return "truncated_data";
    case SnapshotErrorCode::kDataChecksumMismatch: return "data_checksum_mismatch";
    case SnapshotErrorCode::kBadSectionTable: return "bad_section_table";
    case SnapshotErrorCode::kSectionChecksumMismatch: return "section_checksum_mismatch";
  }
  return "unknown";
}

SnapshotHeader decode_snapshot_header(std::span<const std::uint8_t> bytes,
                                      std::uint64_t file_size,
                                      const std::string& origin) {
  static_assert(kSnapshotHeaderBytes == kHeaderBytes,
                "public header-size constant must match the on-disk layout");
  if (bytes.size() < kHeaderBytes) {
    fail(SnapshotErrorCode::kTruncatedHeader, origin,
         "file shorter than the fixed header");
  }
  const auto* buf = reinterpret_cast<const unsigned char*>(bytes.data());
  if (std::memcmp(buf, kMagic, sizeof(kMagic)) != 0) {
    fail(SnapshotErrorCode::kBadMagic, origin, "not a V2V snapshot");
  }
  if (get<std::uint64_t>(buf, 64) != fnv1a64(buf, 64)) {
    fail(SnapshotErrorCode::kHeaderChecksumMismatch, origin,
         "header checksum mismatch");
  }

  SnapshotHeader h;
  h.version = get<std::uint32_t>(buf, 8);
  h.dtype = get<std::uint16_t>(buf, 12);
  const auto endian = get<std::uint16_t>(buf, 14);
  h.rows = get<std::uint64_t>(buf, 16);
  h.dims = get<std::uint64_t>(buf, 24);
  h.row_stride = get<std::uint64_t>(buf, 32);
  h.data_offset = get<std::uint64_t>(buf, 40);
  h.data_bytes = get<std::uint64_t>(buf, 48);
  h.data_checksum = get<std::uint64_t>(buf, 56);

  if (h.version < kSnapshotVersion || h.version > kSnapshotVersionTrainerState) {
    fail(SnapshotErrorCode::kBadVersion, origin,
         "unsupported version " + std::to_string(h.version));
  }
  const bool dtype_none =
      h.dtype == kDtypeNone && h.version >= kSnapshotVersionSections;
  if (h.dtype != kDtypeFloat32 && !dtype_none) {
    fail(SnapshotErrorCode::kBadDtype, origin,
         "unsupported dtype " + std::to_string(h.dtype));
  }
  if (endian != kEndianTag) {
    fail(SnapshotErrorCode::kBadEndianness, origin,
         "byte order does not match this host");
  }
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  if (dtype_none) {
    // No float region: stride and data byte count must both be zero; the
    // quantized payloads live in the section table instead.
    if (h.row_stride != 0 || h.data_bytes != 0 ||
        h.data_offset < kHeaderBytes) {
      fail(SnapshotErrorCode::kBadHeader, origin, "inconsistent header fields");
    }
  } else if (h.row_stride < h.dims || h.data_offset < kHeaderBytes ||
             h.row_stride > kMax / sizeof(float) ||
             (h.row_stride != 0 &&
              h.rows > kMax / (h.row_stride * sizeof(float))) ||
             h.data_bytes != h.rows * h.row_stride * sizeof(float) ||
             h.data_offset > kMax - h.data_bytes) {
    fail(SnapshotErrorCode::kBadHeader, origin, "inconsistent header fields");
  }
  if (file_size < h.data_offset + h.data_bytes) {
    fail(SnapshotErrorCode::kTruncatedData, origin,
         "file shorter than header promises");
  }
  return h;
}

void EmbeddingStore::save(const embed::Embedding& embedding,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open for writing");

  SnapshotHeader h;
  h.rows = embedding.vertex_count();
  h.dims = embedding.dimensions();
  h.row_stride = MatrixF::padded_stride(h.dims);
  h.data_offset = kDataOffset;
  h.data_bytes = h.rows * h.row_stride * sizeof(float);

  // Reserve the header region, stream the rows while folding the data
  // checksum, then come back and write the real header.
  const std::vector<char> zeros(kDataOffset, 0);
  out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));

  std::vector<float> rowbuf(h.row_stride, 0.0f);
  std::uint64_t checksum = kFnvOffsetBasis;
  for (std::size_t v = 0; v < h.rows; ++v) {
    const auto r = embedding.vector(v);
    std::copy(r.begin(), r.end(), rowbuf.begin());
    const std::size_t bytes = h.row_stride * sizeof(float);
    checksum = fnv1a64_accumulate(checksum, rowbuf.data(), bytes);
    out.write(reinterpret_cast<const char*>(rowbuf.data()),
              static_cast<std::streamsize>(bytes));
  }
  h.data_checksum = checksum;

  unsigned char header[kHeaderBytes];
  encode_header(h, header);
  out.seekp(0);
  out.write(reinterpret_cast<const char*>(header), kHeaderBytes);
  out.flush();
  if (!out) fail(SnapshotErrorCode::kOpenFailed, path, "write failed");
}

SnapshotHeader EmbeddingStore::read_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open");
  return read_header_stream(in, path);
}

embed::Embedding EmbeddingStore::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open");
  const SnapshotHeader h = read_header_stream(in, path);
  if (h.dtype != kDtypeFloat32) {
    fail(SnapshotErrorCode::kBadDtype, path, "snapshot carries no float matrix");
  }

  embed::Embedding out(h.rows, h.dims);
  in.seekg(static_cast<std::streamoff>(h.data_offset));
  std::vector<float> rowbuf(h.row_stride);
  std::uint64_t checksum = kFnvOffsetBasis;
  for (std::size_t v = 0; v < h.rows; ++v) {
    const std::size_t bytes = h.row_stride * sizeof(float);
    in.read(reinterpret_cast<char*>(rowbuf.data()),
            static_cast<std::streamsize>(bytes));
    if (!in) fail(SnapshotErrorCode::kTruncatedData, path, "short row read");
    checksum = fnv1a64_accumulate(checksum, rowbuf.data(), bytes);
    const auto dst = out.vector(v);
    std::copy(rowbuf.begin(), rowbuf.begin() + static_cast<std::ptrdiff_t>(h.dims),
              dst.begin());
  }
  if (checksum != h.data_checksum) {
    fail(SnapshotErrorCode::kDataChecksumMismatch, path,
         "data checksum mismatch");
  }
  return out;
}

MappedEmbedding MappedEmbedding::open(const std::string& path, MapMode mode) {
  SnapshotHeader h = EmbeddingStore::read_header(path);
  if (h.dtype != kDtypeFloat32) {
    fail(SnapshotErrorCode::kBadDtype, path, "snapshot carries no float matrix");
  }

  MappedEmbedding out;
  out.header_ = h;
  const std::size_t total_bytes =
      static_cast<std::size_t>(h.data_offset + h.data_bytes);

#if V2V_STORE_HAS_MMAP
  if (mode == MapMode::kAuto && !mmap_disabled_by_env() && h.data_bytes > 0) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      void* base = ::mmap(nullptr, total_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);  // the mapping keeps its own reference
      if (base != MAP_FAILED) {
        out.map_base_ = base;
        out.map_bytes_ = total_bytes;
        const auto* data = reinterpret_cast<const float*>(
            static_cast<const unsigned char*>(base) + h.data_offset);
        out.view_ = EmbeddingView(data, h.rows, h.dims, h.row_stride);
        // Validate in place; this faults every page exactly once, which
        // doubles as index warm-up for the common open-then-build flow.
        const std::uint64_t checksum = fnv1a64(data, h.data_bytes);
        if (checksum != h.data_checksum) {
          fail(SnapshotErrorCode::kDataChecksumMismatch, path,
               "data checksum mismatch");
        }
        return out;
      }
      // mmap refused (e.g. exotic filesystem): fall through to the
      // buffered path rather than failing a readable file.
    }
  }
#else
  (void)mmap_disabled_by_env;
#endif
  (void)mode;
  (void)total_bytes;

  // Buffered fallback: identical observable behaviour, rows owned.
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open");
  in.seekg(static_cast<std::streamoff>(h.data_offset));
  out.buffer_.resize(static_cast<std::size_t>(h.rows * h.row_stride));
  if (!out.buffer_.empty()) {
    in.read(reinterpret_cast<char*>(out.buffer_.data()),
            static_cast<std::streamsize>(h.data_bytes));
    if (!in) fail(SnapshotErrorCode::kTruncatedData, path, "short data read");
  }
  const std::uint64_t checksum = fnv1a64(out.buffer_.data(), h.data_bytes);
  if (checksum != h.data_checksum) {
    fail(SnapshotErrorCode::kDataChecksumMismatch, path,
         "data checksum mismatch");
  }
  out.view_ = EmbeddingView(out.buffer_.data(), h.rows, h.dims, h.row_stride);
  return out;
}

MappedEmbedding::MappedEmbedding(MappedEmbedding&& other) noexcept
    : header_(other.header_),
      view_(other.view_),
      map_base_(std::exchange(other.map_base_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      buffer_(std::move(other.buffer_)) {
  other.view_ = EmbeddingView();
}

MappedEmbedding& MappedEmbedding::operator=(MappedEmbedding&& other) noexcept {
  if (this != &other) {
    reset();
    header_ = other.header_;
    view_ = other.view_;
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    buffer_ = std::move(other.buffer_);
    other.view_ = EmbeddingView();
  }
  return *this;
}

MappedEmbedding::~MappedEmbedding() { reset(); }

void MappedEmbedding::reset() noexcept {
#if V2V_STORE_HAS_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_bytes_);
#endif
  map_base_ = nullptr;
  map_bytes_ = 0;
  buffer_.clear();
  view_ = EmbeddingView();
}

namespace {

constexpr std::size_t kSectionEntryBytes = 32;
constexpr std::size_t kSectionNameBytes = 8;
constexpr std::size_t kSectionTableOffset = kHeaderBytes;
constexpr std::uint32_t kMaxSections = 1024;

[[nodiscard]] std::uint64_t align64(std::uint64_t offset) noexcept {
  return (offset + 63) & ~std::uint64_t{63};
}

/// Parses and validates the section table of an in-memory snapshot image.
/// v1 files have no table: a nonempty float region is surfaced as one
/// synthetic "fmat" entry. Payload checksums are NOT verified here (the
/// caller decides when to fault pages); table structure and ranges are.
std::vector<SnapshotSection> parse_section_table(const std::uint8_t* base,
                                                 std::uint64_t file_size,
                                                 const SnapshotHeader& h,
                                                 const std::string& path) {
  std::vector<SnapshotSection> out;
  if (h.version < kSnapshotVersionSections) {
    if (h.data_bytes > 0) {
      out.push_back({"fmat", h.data_offset, h.data_bytes, h.data_checksum});
    }
    return out;
  }
  if (file_size < kSectionTableOffset + 16) {
    fail(SnapshotErrorCode::kBadSectionTable, path,
         "file shorter than the section table prologue");
  }
  const auto count = get<std::uint32_t>(base, kSectionTableOffset);
  if (count > kMaxSections) {
    fail(SnapshotErrorCode::kBadSectionTable, path,
         "implausible section count " + std::to_string(count));
  }
  const std::uint64_t entries_end =
      kSectionTableOffset + 8 + std::uint64_t{count} * kSectionEntryBytes;
  if (file_size < entries_end + 8) {
    fail(SnapshotErrorCode::kBadSectionTable, path, "truncated section table");
  }
  const std::uint64_t table_bytes = entries_end - kSectionTableOffset;
  if (get<std::uint64_t>(base, entries_end) !=
      fnv1a64(base + kSectionTableOffset, table_bytes)) {
    fail(SnapshotErrorCode::kBadSectionTable, path,
         "section table checksum mismatch");
  }
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t at = kSectionTableOffset + 8 +
                             std::uint64_t{i} * kSectionEntryBytes;
    SnapshotSection s;
    const char* name = reinterpret_cast<const char*>(base + at);
    std::size_t len = 0;
    while (len < kSectionNameBytes && name[len] != '\0') ++len;
    s.name.assign(name, len);
    s.offset = get<std::uint64_t>(base, at + 8);
    s.bytes = get<std::uint64_t>(base, at + 16);
    s.checksum = get<std::uint64_t>(base, at + 24);
    if (s.name.empty() || s.offset < entries_end + 8 ||
        s.bytes > file_size || s.offset > file_size - s.bytes) {
      fail(SnapshotErrorCode::kBadSectionTable, path,
           "section '" + s.name + "' out of range");
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

void SnapshotBuilder::set_float_matrix(const EmbeddingView& view) {
  V2V_CHECK(view.rows() == rows_ && view.dimensions() == dims_,
            "float matrix shape must match the builder's corpus shape");
  row_stride_ = MatrixF::padded_stride(dims_);
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(rows_ * row_stride_ * sizeof(float)), 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto row = view.row(r);
    std::memcpy(payload.data() + r * row_stride_ * sizeof(float), row.data(),
                dims_ * sizeof(float));
  }
  add_section("fmat", std::move(payload));
}

void SnapshotBuilder::add_section(const std::string& name,
                                  std::vector<std::uint8_t> payload) {
  V2V_CHECK(!name.empty() && name.size() <= kSectionNameBytes,
            "section name must be 1..8 bytes");
  for (const auto& [existing, bytes] : sections_) {
    (void)bytes;
    V2V_CHECK(existing != name, "duplicate section name");
  }
  sections_.emplace_back(name, std::move(payload));
}

void SnapshotBuilder::set_min_version(std::uint32_t version) {
  V2V_CHECK(version <= kSnapshotVersionTrainerState,
            "SnapshotBuilder: version beyond what this build can write");
  min_version_ = std::max(min_version_, version);
}

void SnapshotBuilder::write(const std::string& path) const {
  V2V_CHECK(sections_.size() <= kMaxSections, "too many sections");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open for writing");

  // Lay out payloads: 64-byte aligned, "fmat" placed wherever it appears
  // in add order (set_float_matrix callers add it first in practice).
  const std::uint64_t entries_end =
      kSectionTableOffset + 8 + sections_.size() * kSectionEntryBytes;
  std::uint64_t cursor = align64(entries_end + 8);
  std::vector<SnapshotSection> entries;
  entries.reserve(sections_.size());
  const SnapshotSection* fmat = nullptr;
  for (const auto& [name, payload] : sections_) {
    SnapshotSection s;
    s.name = name;
    s.offset = cursor;
    s.bytes = payload.size();
    s.checksum = fnv1a64(payload.data(), payload.size());
    cursor = align64(cursor + s.bytes);
    entries.push_back(std::move(s));
    if (name == "fmat") fmat = &entries.back();
  }

  SnapshotHeader h;
  h.version = std::max(kSnapshotVersionSections, min_version_);
  h.rows = rows_;
  h.dims = dims_;
  if (fmat != nullptr) {
    h.dtype = kDtypeFloat32;
    h.row_stride = row_stride_;
    h.data_offset = fmat->offset;
    h.data_bytes = fmat->bytes;
    h.data_checksum = fmat->checksum;
  } else {
    h.dtype = kDtypeNone;
    h.row_stride = 0;
    h.data_offset = align64(entries_end + 8);
    h.data_bytes = 0;
    h.data_checksum = 0;
  }

  unsigned char header[kHeaderBytes];
  encode_header(h, header);
  out.write(reinterpret_cast<const char*>(header), kHeaderBytes);

  // Section table: count + reserved, entries, then the table checksum.
  std::vector<std::uint8_t> table(8 + sections_.size() * kSectionEntryBytes, 0);
  put<std::uint32_t>(table.data(), 0,
                     static_cast<std::uint32_t>(sections_.size()));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::size_t at = 8 + i * kSectionEntryBytes;
    std::memcpy(table.data() + at, entries[i].name.data(),
                entries[i].name.size());
    put<std::uint64_t>(table.data(), at + 8, entries[i].offset);
    put<std::uint64_t>(table.data(), at + 16, entries[i].bytes);
    put<std::uint64_t>(table.data(), at + 24, entries[i].checksum);
  }
  out.write(reinterpret_cast<const char*>(table.data()),
            static_cast<std::streamsize>(table.size()));
  const std::uint64_t table_checksum = fnv1a64(table.data(), table.size());
  out.write(reinterpret_cast<const char*>(&table_checksum), 8);

  // Payloads, with zero padding up to each aligned offset.
  std::uint64_t written = entries_end + 8;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::vector<char> pad(
        static_cast<std::size_t>(entries[i].offset - written), 0);
    out.write(pad.data(), static_cast<std::streamsize>(pad.size()));
    const auto& payload = sections_[i].second;
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    written = entries[i].offset + entries[i].bytes;
  }
  out.flush();
  if (!out) fail(SnapshotErrorCode::kOpenFailed, path, "write failed");
}

MappedSnapshot MappedSnapshot::open(const std::string& path, MapMode mode) {
  const SnapshotHeader h = EmbeddingStore::read_header(path);

  MappedSnapshot out;
  out.header_ = h;

  std::uint64_t file_size = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open");
    file_size = static_cast<std::uint64_t>(in.tellg());
  }
  out.file_bytes_ = static_cast<std::size_t>(file_size);

#if V2V_STORE_HAS_MMAP
  if (mode == MapMode::kAuto && !mmap_disabled_by_env() && file_size > 0) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      void* base =
          ::mmap(nullptr, out.file_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (base != MAP_FAILED) {
        out.map_base_ = base;
        out.map_bytes_ = out.file_bytes_;
      }
    }
  }
#endif
  if (out.map_base_ == nullptr) {
    std::ifstream in(path, std::ios::binary);
    if (!in) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open");
    out.buffer_.resize(out.file_bytes_);
    if (!out.buffer_.empty()) {
      in.read(reinterpret_cast<char*>(out.buffer_.data()),
              static_cast<std::streamsize>(out.buffer_.size()));
      if (!in) fail(SnapshotErrorCode::kTruncatedData, path, "short file read");
    }
  }

  out.sections_ = parse_section_table(out.base(), file_size, h, path);
  for (const auto& s : out.sections_) {
    const std::uint64_t checksum =
        fnv1a64(out.base() + s.offset, static_cast<std::size_t>(s.bytes));
    if (checksum != s.checksum) {
      fail(SnapshotErrorCode::kSectionChecksumMismatch, path,
           "section '" + s.name + "' checksum mismatch");
    }
  }
  return out;
}

bool MappedSnapshot::has_section(const std::string& name) const noexcept {
  for (const auto& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

std::span<const std::uint8_t> MappedSnapshot::section(
    const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) {
      return {base() + s.offset, static_cast<std::size_t>(s.bytes)};
    }
  }
  fail(SnapshotErrorCode::kBadHeader, "<mapped>",
       "section '" + name + "' not present");
}

EmbeddingView MappedSnapshot::float_view() const noexcept {
  V2V_CHECK(has_floats(), "snapshot carries no float matrix");
  const auto* data =
      reinterpret_cast<const float*>(base() + header_.data_offset);
  return EmbeddingView(data, header_.rows, header_.dims, header_.row_stride);
}

const std::uint8_t* MappedSnapshot::base() const noexcept {
  return map_base_ != nullptr ? static_cast<const std::uint8_t*>(map_base_)
                              : buffer_.data();
}

MappedSnapshot::MappedSnapshot(MappedSnapshot&& other) noexcept
    : header_(other.header_),
      sections_(std::move(other.sections_)),
      map_base_(std::exchange(other.map_base_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      buffer_(std::move(other.buffer_)),
      file_bytes_(std::exchange(other.file_bytes_, 0)) {}

MappedSnapshot& MappedSnapshot::operator=(MappedSnapshot&& other) noexcept {
  if (this != &other) {
    reset();
    header_ = other.header_;
    sections_ = std::move(other.sections_);
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    buffer_ = std::move(other.buffer_);
    file_bytes_ = std::exchange(other.file_bytes_, 0);
  }
  return *this;
}

MappedSnapshot::~MappedSnapshot() { reset(); }

void MappedSnapshot::reset() noexcept {
#if V2V_STORE_HAS_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_bytes_);
#endif
  map_base_ = nullptr;
  map_bytes_ = 0;
  buffer_.clear();
  sections_.clear();
}

void convert_text_to_snapshot(const std::string& text_path,
                              const std::string& snapshot_path) {
  EmbeddingStore::save(embed::Embedding::load_text_file(text_path), snapshot_path);
}

void convert_snapshot_to_text(const std::string& snapshot_path,
                              const std::string& text_path) {
  EmbeddingStore::load(snapshot_path).save_text_file(text_path);
}

}  // namespace v2v::store
