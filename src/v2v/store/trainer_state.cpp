#include "v2v/store/trainer_state.hpp"

#include <cstring>
#include <string_view>

namespace v2v::store {
namespace {

// "tlrst" fixed block, little-endian (the snapshot endian tag guards
// byte order for the whole file):
//   0   u32  trainer-state format version (1)
//   4   u8   architecture (0 = CBOW, 1 = SkipGram)
//   5   u8   objective (0 = negative sampling, 1 = hierarchical softmax)
//   6   u16  reserved (0)
//   8   u64  dimensions        16  u64  window         24  u64  negative
//   32  f64  initial_lr        40  f64  last_lr
//   48  f64  min_lr_fraction   56  f64  subsample
//   64  u64  tokens_processed  72  u64  planned_tokens
//   80  u64  seed              88  u64  walks_per_vertex
//   96  u64  walk_length       104 u64  walk_seed
//   112 u64  refresh_rounds    120 u64  reserved (0)
constexpr std::uint32_t kLrStateVersion = 1;
constexpr std::size_t kLrStateBytes = 128;

template <typename T>
void put(std::uint8_t* buf, std::size_t offset, T value) {
  std::memcpy(buf + offset, &value, sizeof(T));
}

template <typename T>
[[nodiscard]] T get(const std::uint8_t* buf, std::size_t offset) {
  T value;
  std::memcpy(&value, buf + offset, sizeof(T));
  return value;
}

[[noreturn]] void fail(const std::string& what) {
  throw SnapshotError(SnapshotErrorCode::kBadHeader, "trainer state: " + what);
}

}  // namespace

bool has_trainer_state(const MappedSnapshot& snap) noexcept {
  return snap.has_section(kSectionTrainerSyn1) &&
         snap.has_section(kSectionTrainerFreq) &&
         snap.has_section(kSectionTrainerLrState);
}

void add_trainer_state(SnapshotBuilder& builder,
                       const embed::TrainerCheckpoint& checkpoint) {
  // syn1: dense rows x dims floats, stride stripped (the padded stride is
  // an in-memory layout choice, not a serialization contract).
  const std::size_t rows = checkpoint.syn1.rows();
  const std::size_t dims = checkpoint.syn1.cols();
  std::vector<std::uint8_t> syn1(16 + rows * dims * sizeof(float));
  put<std::uint64_t>(syn1.data(), 0, rows);
  put<std::uint64_t>(syn1.data(), 8, dims);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto row = checkpoint.syn1.row(r);
    std::memcpy(syn1.data() + 16 + r * dims * sizeof(float), row.data(),
                dims * sizeof(float));
  }
  builder.add_section(kSectionTrainerSyn1, std::move(syn1));

  std::vector<std::uint8_t> freq(8 + checkpoint.frequencies.size() * 8);
  put<std::uint64_t>(freq.data(), 0, checkpoint.frequencies.size());
  for (std::size_t i = 0; i < checkpoint.frequencies.size(); ++i) {
    put<std::uint64_t>(freq.data(), 8 + i * 8, checkpoint.frequencies[i]);
  }
  builder.add_section(kSectionTrainerFreq, std::move(freq));

  std::vector<std::uint8_t> lr(kLrStateBytes, 0);
  put<std::uint32_t>(lr.data(), 0, kLrStateVersion);
  lr[4] = static_cast<std::uint8_t>(checkpoint.architecture);
  lr[5] = static_cast<std::uint8_t>(checkpoint.objective);
  put<std::uint64_t>(lr.data(), 8, checkpoint.dimensions);
  put<std::uint64_t>(lr.data(), 16, checkpoint.window);
  put<std::uint64_t>(lr.data(), 24, checkpoint.negative);
  put<double>(lr.data(), 32, checkpoint.initial_lr);
  put<double>(lr.data(), 40, checkpoint.last_lr);
  put<double>(lr.data(), 48, checkpoint.min_lr_fraction);
  put<double>(lr.data(), 56, checkpoint.subsample);
  put<std::uint64_t>(lr.data(), 64, checkpoint.tokens_processed);
  put<std::uint64_t>(lr.data(), 72, checkpoint.planned_tokens);
  put<std::uint64_t>(lr.data(), 80, checkpoint.seed);
  put<std::uint64_t>(lr.data(), 88, checkpoint.walks_per_vertex);
  put<std::uint64_t>(lr.data(), 96, checkpoint.walk_length);
  put<std::uint64_t>(lr.data(), 104, checkpoint.walk_seed);
  put<std::uint64_t>(lr.data(), 112, checkpoint.refresh_rounds);
  builder.add_section(kSectionTrainerLrState, std::move(lr));

  builder.set_min_version(kSnapshotVersionTrainerState);
}

embed::TrainerCheckpoint load_trainer_state(const MappedSnapshot& snap) {
  if (!has_trainer_state(snap)) {
    fail("snapshot carries no trainer-state sections (not resume-capable)");
  }
  embed::TrainerCheckpoint checkpoint;

  const auto lr = snap.section(kSectionTrainerLrState);
  if (lr.size() != kLrStateBytes) fail("tlrst has unexpected size");
  if (get<std::uint32_t>(lr.data(), 0) != kLrStateVersion) {
    fail("unknown tlrst format version");
  }
  if (lr[4] > 1) fail("bad architecture tag");
  if (lr[5] > 1) fail("bad objective tag");
  checkpoint.architecture = static_cast<embed::Architecture>(lr[4]);
  checkpoint.objective = static_cast<embed::Objective>(lr[5]);
  checkpoint.dimensions = get<std::uint64_t>(lr.data(), 8);
  checkpoint.window = get<std::uint64_t>(lr.data(), 16);
  checkpoint.negative = get<std::uint64_t>(lr.data(), 24);
  checkpoint.initial_lr = get<double>(lr.data(), 32);
  checkpoint.last_lr = get<double>(lr.data(), 40);
  checkpoint.min_lr_fraction = get<double>(lr.data(), 48);
  checkpoint.subsample = get<double>(lr.data(), 56);
  checkpoint.tokens_processed = get<std::uint64_t>(lr.data(), 64);
  checkpoint.planned_tokens = get<std::uint64_t>(lr.data(), 72);
  checkpoint.seed = get<std::uint64_t>(lr.data(), 80);
  checkpoint.walks_per_vertex = get<std::uint64_t>(lr.data(), 88);
  checkpoint.walk_length = get<std::uint64_t>(lr.data(), 96);
  checkpoint.walk_seed = get<std::uint64_t>(lr.data(), 104);
  checkpoint.refresh_rounds = get<std::uint64_t>(lr.data(), 112);

  const auto syn1 = snap.section(kSectionTrainerSyn1);
  if (syn1.size() < 16) fail("tsyn1 truncated");
  const auto rows = get<std::uint64_t>(syn1.data(), 0);
  const auto dims = get<std::uint64_t>(syn1.data(), 8);
  if (dims != checkpoint.dimensions) fail("tsyn1 dims disagree with tlrst");
  // Divide instead of multiplying shape fields read from disk, so a
  // crafted rows*dims cannot wrap around the size check.
  const std::uint64_t syn1_avail = syn1.size() - 16;
  const std::uint64_t row_bytes = dims * sizeof(float);
  if (dims == 0 || dims > syn1_avail / sizeof(float) ||
      syn1_avail % row_bytes != 0 || rows != syn1_avail / row_bytes) {
    fail("tsyn1 payload size disagrees with its shape");
  }
  checkpoint.syn1 = MatrixF(rows, dims);
  for (std::uint64_t r = 0; r < rows; ++r) {
    auto row = checkpoint.syn1.row(r);
    std::memcpy(row.data(), syn1.data() + 16 + r * dims * sizeof(float),
                dims * sizeof(float));
  }

  const auto freq = snap.section(kSectionTrainerFreq);
  if (freq.size() < 8) fail("tfreq truncated");
  const auto count = get<std::uint64_t>(freq.data(), 0);
  const std::uint64_t freq_avail = freq.size() - 8;
  if (freq_avail % 8 != 0 || count != freq_avail / 8) {
    fail("tfreq payload size disagrees with its count");
  }
  checkpoint.frequencies.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    checkpoint.frequencies[i] = get<std::uint64_t>(freq.data(), 8 + i * 8);
  }
  return checkpoint;
}

const char* section_kind(const std::string& name) noexcept {
  const std::string_view n(name);
  if (n == "fmat") return "float matrix";
  if (n == kSectionTrainerSyn1 || n == kSectionTrainerFreq ||
      n == kSectionTrainerLrState) {
    return "optimizer state";
  }
  if (n == "qmet" || n == "sq8p" || n == "sq8c" || n == "pqbk" || n == "pqcc" ||
      n == "pqcd" || n == "pqid" || n == "pqls") {
    return "quantized payload";
  }
  return "unknown";
}

}  // namespace v2v::store
