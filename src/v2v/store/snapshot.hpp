// Versioned binary embedding snapshots: the at-rest format of the serving
// layer (ROADMAP: heavy query traffic needs cheap vector access; reloading
// the text format per run does not scale).
//
// The container format itself — fixed header, checksummed section table,
// mmap reader, streaming writer — lives in store/format.hpp (it depends
// only on common/, so the walk layer's corpus spool reuses it). This
// header adds the embedding-level API on top:
//
//   - EmbeddingStore: save/load an embed::Embedding as a v1 snapshot
//   - MappedEmbedding: zero-copy mmap'd rows for serving
//   - text <-> snapshot converters for the word2vec format
//
// Loading is either by copy (`EmbeddingStore::load`) or zero-copy
// (`MappedEmbedding`): the mapped path hands out rows pointing straight
// into the page cache — no row memcpy — and falls back to a buffered read
// on platforms without mmap (or when V2V_STORE_NO_MMAP=1 is set, which is
// how the fallback is tested everywhere).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "v2v/common/aligned.hpp"
#include "v2v/embed/embedding.hpp"
#include "v2v/store/embedding_view.hpp"
#include "v2v/store/format.hpp"

namespace v2v::store {

class EmbeddingStore {
 public:
  /// Writes `embedding` as a snapshot at `path` (atomically overwriting is
  /// the caller's concern; this truncates in place).
  static void save(const embed::Embedding& embedding, const std::string& path);

  /// Validates and reads the whole snapshot into an owning Embedding.
  [[nodiscard]] static embed::Embedding load(const std::string& path);

  /// Validates and decodes just the fixed header (cheap metadata probe).
  [[nodiscard]] static SnapshotHeader read_header(const std::string& path);
};

/// A snapshot opened for serving. On POSIX the row region is mmapped
/// read-only and `row()` / `view()` point straight into the mapping —
/// zero-copy, pages fault in on first touch. Elsewhere (or under
/// V2V_STORE_NO_MMAP=1, or MapMode::kBuffered) the rows are read into an
/// owning 64-byte-aligned buffer with identical observable behaviour.
/// Move-only; the destructor unmaps.
class MappedEmbedding {
 public:
  using MapMode = store::MapMode;

  /// Opens and fully validates `path` (header + data checksums).
  [[nodiscard]] static MappedEmbedding open(const std::string& path,
                                            MapMode mode = MapMode::kAuto);

  MappedEmbedding(MappedEmbedding&& other) noexcept;
  MappedEmbedding& operator=(MappedEmbedding&& other) noexcept;
  MappedEmbedding(const MappedEmbedding&) = delete;
  MappedEmbedding& operator=(const MappedEmbedding&) = delete;
  ~MappedEmbedding();

  [[nodiscard]] std::size_t rows() const noexcept { return header_.rows; }
  [[nodiscard]] std::size_t dimensions() const noexcept { return header_.dims; }
  [[nodiscard]] const SnapshotHeader& header() const noexcept { return header_; }
  /// True when rows are served from the mapping (no copy was made).
  [[nodiscard]] bool zero_copy() const noexcept { return map_base_ != nullptr; }

  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    return view_.row(r);
  }
  /// View valid for this object's lifetime; feed it to FlatIndex/IvfIndex.
  [[nodiscard]] EmbeddingView view() const noexcept { return view_; }

 private:
  MappedEmbedding() = default;
  void reset() noexcept;

  SnapshotHeader header_;
  EmbeddingView view_;
  void* map_base_ = nullptr;  ///< non-null iff mmap-backed
  std::size_t map_bytes_ = 0;
  AlignedVector<float> buffer_;  ///< fallback storage
};

/// Converters between the word2vec text format and the snapshot format.
void convert_text_to_snapshot(const std::string& text_path,
                              const std::string& snapshot_path);
void convert_snapshot_to_text(const std::string& snapshot_path,
                              const std::string& text_path);

}  // namespace v2v::store
