// Versioned binary embedding snapshots: the at-rest format of the serving
// layer (ROADMAP: heavy query traffic needs cheap vector access; reloading
// the text format per run does not scale).
//
// On-disk layout (all integers little-endian; see docs/ARCHITECTURE.md):
//
//   offset 0   magic      "V2VSNAP1"                      8 bytes
//          8   version    u32 (currently 1)
//         12   dtype      u16 (1 = float32)
//         14   endian     u16 (0x0102, detects byte-swapped files)
//         16   rows       u64
//         24   dims       u64
//         32   row_stride u64  floats per row on disk (>= dims; matches
//                              MatrixF::padded_stride so rows stay
//                              64-byte aligned when mmapped)
//         40   data_offset u64 (64-byte aligned; currently 128)
//         48   data_bytes  u64 (= rows * row_stride * 4)
//         56   data_checksum   u64  FNV-1a 64 over the row region
//         64   header_checksum u64  FNV-1a 64 over bytes [0, 64)
//         ...  zero padding up to data_offset
//   data_offset  row region: rows * row_stride floats, the tail of each
//                row past dims zero-filled
//
// Both checksums are verified on load; every malformed input fails with a
// typed SnapshotError (never UB), so corrupt files are diagnosable and the
// corruption test matrix can assert exact error codes. The format is
// versioned: readers reject versions they do not understand, and any
// layout change must bump kSnapshotVersion.
//
// Loading is either by copy (`EmbeddingStore::load`) or zero-copy
// (`MappedEmbedding`): the mapped path hands out rows pointing straight
// into the page cache — no row memcpy — and falls back to a buffered read
// on platforms without mmap (or when V2V_STORE_NO_MMAP=1 is set, which is
// how the fallback is tested everywhere).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "v2v/common/aligned.hpp"
#include "v2v/embed/embedding.hpp"
#include "v2v/store/embedding_view.hpp"

namespace v2v::store {

inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::uint16_t kDtypeFloat32 = 1;
inline constexpr std::uint16_t kEndianTag = 0x0102;

/// FNV-1a 64-bit over a byte range. Exposed so tests can forge valid
/// checksums when building corruption cases.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t bytes) noexcept;

enum class SnapshotErrorCode : std::uint8_t {
  kOpenFailed,              ///< file missing or unreadable/unwritable
  kTruncatedHeader,         ///< shorter than the fixed header
  kBadMagic,                ///< not a snapshot file
  kHeaderChecksumMismatch,  ///< header bytes corrupted
  kBadVersion,              ///< written by an unknown format revision
  kBadDtype,                ///< element type this build cannot serve
  kBadEndianness,           ///< byte-swapped producer
  kBadHeader,               ///< internally inconsistent header fields
  kTruncatedData,           ///< file shorter than header promises
  kDataChecksumMismatch,    ///< row region corrupted
};

[[nodiscard]] const char* snapshot_error_name(SnapshotErrorCode code) noexcept;

/// Every failure of the snapshot layer throws this; `code()` makes the
/// failure mode machine-checkable (corruption matrix tests, CLI exit
/// messages).
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapshotErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] SnapshotErrorCode code() const noexcept { return code_; }

 private:
  SnapshotErrorCode code_;
};

/// Decoded fixed header of a snapshot file.
struct SnapshotHeader {
  std::uint32_t version = kSnapshotVersion;
  std::uint16_t dtype = kDtypeFloat32;
  std::uint64_t rows = 0;
  std::uint64_t dims = 0;
  std::uint64_t row_stride = 0;
  std::uint64_t data_offset = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t data_checksum = 0;
};

/// Size of the fixed header on disk (magic through header_checksum).
inline constexpr std::size_t kSnapshotHeaderBytes = 72;

/// Validates and decodes the fixed header from an in-memory byte range
/// (at least the first kSnapshotHeaderBytes of a purported snapshot).
/// `file_size` is the total size of the purported file, checked against
/// the region the header promises. Throws SnapshotError with the same
/// typed codes as the file-based readers; `origin` names the source in
/// error messages. This is the single validator behind
/// read_header/load/MappedEmbedding::open for untrusted bytes — and the
/// entry point fuzz/fuzz_snapshot.cpp drives.
[[nodiscard]] SnapshotHeader decode_snapshot_header(
    std::span<const std::uint8_t> bytes, std::uint64_t file_size,
    const std::string& origin = "<memory>");

class EmbeddingStore {
 public:
  /// Writes `embedding` as a snapshot at `path` (atomically overwriting is
  /// the caller's concern; this truncates in place).
  static void save(const embed::Embedding& embedding, const std::string& path);

  /// Validates and reads the whole snapshot into an owning Embedding.
  [[nodiscard]] static embed::Embedding load(const std::string& path);

  /// Validates and decodes just the fixed header (cheap metadata probe).
  [[nodiscard]] static SnapshotHeader read_header(const std::string& path);
};

/// A snapshot opened for serving. On POSIX the row region is mmapped
/// read-only and `row()` / `view()` point straight into the mapping —
/// zero-copy, pages fault in on first touch. Elsewhere (or under
/// V2V_STORE_NO_MMAP=1, or MapMode::kBuffered) the rows are read into an
/// owning 64-byte-aligned buffer with identical observable behaviour.
/// Move-only; the destructor unmaps.
class MappedEmbedding {
 public:
  enum class MapMode : std::uint8_t {
    kAuto,      ///< mmap when the platform has it, else buffered
    kBuffered,  ///< force the owning-buffer path
  };

  /// Opens and fully validates `path` (header + data checksums).
  [[nodiscard]] static MappedEmbedding open(const std::string& path,
                                            MapMode mode = MapMode::kAuto);

  MappedEmbedding(MappedEmbedding&& other) noexcept;
  MappedEmbedding& operator=(MappedEmbedding&& other) noexcept;
  MappedEmbedding(const MappedEmbedding&) = delete;
  MappedEmbedding& operator=(const MappedEmbedding&) = delete;
  ~MappedEmbedding();

  [[nodiscard]] std::size_t rows() const noexcept { return header_.rows; }
  [[nodiscard]] std::size_t dimensions() const noexcept { return header_.dims; }
  [[nodiscard]] const SnapshotHeader& header() const noexcept { return header_; }
  /// True when rows are served from the mapping (no copy was made).
  [[nodiscard]] bool zero_copy() const noexcept { return map_base_ != nullptr; }

  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    return view_.row(r);
  }
  /// View valid for this object's lifetime; feed it to FlatIndex/IvfIndex.
  [[nodiscard]] EmbeddingView view() const noexcept { return view_; }

 private:
  MappedEmbedding() = default;
  void reset() noexcept;

  SnapshotHeader header_;
  EmbeddingView view_;
  void* map_base_ = nullptr;  ///< non-null iff mmap-backed
  std::size_t map_bytes_ = 0;
  AlignedVector<float> buffer_;  ///< fallback storage
};

/// Converters between the word2vec text format and the snapshot format.
void convert_text_to_snapshot(const std::string& text_path,
                              const std::string& snapshot_path);
void convert_snapshot_to_text(const std::string& snapshot_path,
                              const std::string& text_path);

}  // namespace v2v::store
