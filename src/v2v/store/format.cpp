#include "v2v/store/format.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <utility>
#include <vector>

#include "v2v/common/check.hpp"
#include "v2v/common/matrix.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define V2V_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define V2V_STORE_HAS_MMAP 0
#endif

namespace v2v::store {
namespace {

constexpr char kMagic[8] = {'V', '2', 'V', 'S', 'N', 'A', 'P', '1'};
constexpr std::size_t kHeaderBytes = kSnapshotHeaderBytes;

constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

template <typename T>
void put(std::uint8_t* buf, std::size_t offset, T value) noexcept {
  std::memcpy(buf + offset, &value, sizeof(T));
}

template <typename T>
[[nodiscard]] T get(const std::uint8_t* buf, std::size_t offset) noexcept {
  T value;
  std::memcpy(&value, buf + offset, sizeof(T));
  return value;
}

[[noreturn]] void fail(SnapshotErrorCode code, const std::string& path,
                       const std::string& detail) {
  throw_snapshot_error(code, path, detail);
}

constexpr std::size_t kSectionEntryBytes = 32;
constexpr std::size_t kSectionNameBytes = 8;
constexpr std::size_t kSectionTableOffset = kHeaderBytes;
constexpr std::uint32_t kMaxSections = 1024;

[[nodiscard]] std::uint64_t align64(std::uint64_t offset) noexcept {
  return (offset + 63) & ~std::uint64_t{63};
}

/// Serializes the section table prologue + entries into a buffer (the
/// trailing table checksum is written separately). Shared by the buffering
/// and streaming writers so their bytes are identical.
[[nodiscard]] std::vector<std::uint8_t> encode_section_table(
    const std::vector<SnapshotSection>& entries) {
  std::vector<std::uint8_t> table(8 + entries.size() * kSectionEntryBytes, 0);
  put<std::uint32_t>(table.data(), 0, static_cast<std::uint32_t>(entries.size()));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::size_t at = 8 + i * kSectionEntryBytes;
    std::memcpy(table.data() + at, entries[i].name.data(), entries[i].name.size());
    put<std::uint64_t>(table.data(), at + 8, entries[i].offset);
    put<std::uint64_t>(table.data(), at + 16, entries[i].bytes);
    put<std::uint64_t>(table.data(), at + 24, entries[i].checksum);
  }
  return table;
}

/// Parses and validates the section table of an in-memory snapshot image.
/// v1 files have no table: a nonempty float region is surfaced as one
/// synthetic "fmat" entry. Payload checksums are NOT verified here (the
/// caller decides when to fault pages); table structure and ranges are.
std::vector<SnapshotSection> parse_section_table(const std::uint8_t* base,
                                                 std::uint64_t file_size,
                                                 const SnapshotHeader& h,
                                                 const std::string& path) {
  std::vector<SnapshotSection> out;
  if (h.version < kSnapshotVersionSections) {
    if (h.data_bytes > 0) {
      out.push_back({"fmat", h.data_offset, h.data_bytes, h.data_checksum});
    }
    return out;
  }
  if (file_size < kSectionTableOffset + 16) {
    fail(SnapshotErrorCode::kBadSectionTable, path,
         "file shorter than the section table prologue");
  }
  const auto count = get<std::uint32_t>(base, kSectionTableOffset);
  if (count > kMaxSections) {
    fail(SnapshotErrorCode::kBadSectionTable, path,
         "implausible section count " + std::to_string(count));
  }
  const std::uint64_t entries_end =
      kSectionTableOffset + 8 + std::uint64_t{count} * kSectionEntryBytes;
  if (file_size < entries_end + 8) {
    fail(SnapshotErrorCode::kBadSectionTable, path, "truncated section table");
  }
  const std::uint64_t table_bytes = entries_end - kSectionTableOffset;
  if (get<std::uint64_t>(base, entries_end) !=
      fnv1a64(base + kSectionTableOffset, table_bytes)) {
    fail(SnapshotErrorCode::kBadSectionTable, path,
         "section table checksum mismatch");
  }
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t at = kSectionTableOffset + 8 +
                             std::uint64_t{i} * kSectionEntryBytes;
    SnapshotSection s;
    const char* name = reinterpret_cast<const char*>(base + at);
    std::size_t len = 0;
    while (len < kSectionNameBytes && name[len] != '\0') ++len;
    s.name.assign(name, len);
    s.offset = get<std::uint64_t>(base, at + 8);
    s.bytes = get<std::uint64_t>(base, at + 16);
    s.checksum = get<std::uint64_t>(base, at + 24);
    if (s.name.empty() || s.offset < entries_end + 8 ||
        s.bytes > file_size || s.offset > file_size - s.bytes) {
      fail(SnapshotErrorCode::kBadSectionTable, path,
           "section '" + s.name + "' out of range");
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

std::uint64_t fnv1a64_accumulate(std::uint64_t state, const void* data,
                                 std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    state ^= p[i];
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t fnv1a64(const void* data, std::size_t bytes) noexcept {
  return fnv1a64_accumulate(fnv1a64_seed(), data, bytes);
}

const char* snapshot_error_name(SnapshotErrorCode code) noexcept {
  switch (code) {
    case SnapshotErrorCode::kOpenFailed: return "open_failed";
    case SnapshotErrorCode::kTruncatedHeader: return "truncated_header";
    case SnapshotErrorCode::kBadMagic: return "bad_magic";
    case SnapshotErrorCode::kHeaderChecksumMismatch: return "header_checksum_mismatch";
    case SnapshotErrorCode::kBadVersion: return "bad_version";
    case SnapshotErrorCode::kBadDtype: return "bad_dtype";
    case SnapshotErrorCode::kBadEndianness: return "bad_endianness";
    case SnapshotErrorCode::kBadHeader: return "bad_header";
    case SnapshotErrorCode::kTruncatedData: return "truncated_data";
    case SnapshotErrorCode::kDataChecksumMismatch: return "data_checksum_mismatch";
    case SnapshotErrorCode::kBadSectionTable: return "bad_section_table";
    case SnapshotErrorCode::kSectionChecksumMismatch: return "section_checksum_mismatch";
  }
  return "unknown";
}

void throw_snapshot_error(SnapshotErrorCode code, const std::string& origin,
                          const std::string& detail) {
  throw SnapshotError(code, "snapshot: " + origin + ": " + detail + " [" +
                                snapshot_error_name(code) + "]");
}

void encode_snapshot_header(const SnapshotHeader& h,
                            std::span<std::uint8_t> out) noexcept {
  V2V_CHECK(out.size() >= kHeaderBytes,
            "encode_snapshot_header: buffer shorter than the fixed header");
  std::uint8_t* buf = out.data();
  std::memcpy(buf, kMagic, sizeof(kMagic));
  put<std::uint32_t>(buf, 8, h.version);
  put<std::uint16_t>(buf, 12, h.dtype);
  put<std::uint16_t>(buf, 14, kEndianTag);
  put<std::uint64_t>(buf, 16, h.rows);
  put<std::uint64_t>(buf, 24, h.dims);
  put<std::uint64_t>(buf, 32, h.row_stride);
  put<std::uint64_t>(buf, 40, h.data_offset);
  put<std::uint64_t>(buf, 48, h.data_bytes);
  put<std::uint64_t>(buf, 56, h.data_checksum);
  put<std::uint64_t>(buf, 64, fnv1a64(buf, 64));
}

SnapshotHeader decode_snapshot_header(std::span<const std::uint8_t> bytes,
                                      std::uint64_t file_size,
                                      const std::string& origin) {
  if (bytes.size() < kHeaderBytes) {
    fail(SnapshotErrorCode::kTruncatedHeader, origin,
         "file shorter than the fixed header");
  }
  const std::uint8_t* buf = bytes.data();
  if (std::memcmp(buf, kMagic, sizeof(kMagic)) != 0) {
    fail(SnapshotErrorCode::kBadMagic, origin, "not a V2V snapshot");
  }
  if (get<std::uint64_t>(buf, 64) != fnv1a64(buf, 64)) {
    fail(SnapshotErrorCode::kHeaderChecksumMismatch, origin,
         "header checksum mismatch");
  }

  SnapshotHeader h;
  h.version = get<std::uint32_t>(buf, 8);
  h.dtype = get<std::uint16_t>(buf, 12);
  const auto endian = get<std::uint16_t>(buf, 14);
  h.rows = get<std::uint64_t>(buf, 16);
  h.dims = get<std::uint64_t>(buf, 24);
  h.row_stride = get<std::uint64_t>(buf, 32);
  h.data_offset = get<std::uint64_t>(buf, 40);
  h.data_bytes = get<std::uint64_t>(buf, 48);
  h.data_checksum = get<std::uint64_t>(buf, 56);

  if (h.version < kSnapshotVersion || h.version > kSnapshotVersionTrainerState) {
    fail(SnapshotErrorCode::kBadVersion, origin,
         "unsupported version " + std::to_string(h.version));
  }
  const bool dtype_none =
      h.dtype == kDtypeNone && h.version >= kSnapshotVersionSections;
  if (h.dtype != kDtypeFloat32 && !dtype_none) {
    fail(SnapshotErrorCode::kBadDtype, origin,
         "unsupported dtype " + std::to_string(h.dtype));
  }
  if (endian != kEndianTag) {
    fail(SnapshotErrorCode::kBadEndianness, origin,
         "byte order does not match this host");
  }
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  if (dtype_none) {
    // No float region: stride and data byte count must both be zero; the
    // payloads live in the section table instead.
    if (h.row_stride != 0 || h.data_bytes != 0 ||
        h.data_offset < kHeaderBytes) {
      fail(SnapshotErrorCode::kBadHeader, origin, "inconsistent header fields");
    }
  } else if (h.row_stride < h.dims || h.data_offset < kHeaderBytes ||
             h.row_stride > kMax / sizeof(float) ||
             (h.row_stride != 0 &&
              h.rows > kMax / (h.row_stride * sizeof(float))) ||
             h.data_bytes != h.rows * h.row_stride * sizeof(float) ||
             h.data_offset > kMax - h.data_bytes) {
    fail(SnapshotErrorCode::kBadHeader, origin, "inconsistent header fields");
  }
  if (file_size < h.data_offset + h.data_bytes) {
    fail(SnapshotErrorCode::kTruncatedData, origin,
         "file shorter than header promises");
  }
  return h;
}

SnapshotHeader read_snapshot_header(std::istream& in, const std::string& origin) {
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  std::uint8_t buf[kHeaderBytes];
  in.read(reinterpret_cast<char*>(buf), kHeaderBytes);
  const auto got = !in ? std::size_t{0} : static_cast<std::size_t>(in.gcount());
  return decode_snapshot_header({buf, got}, file_size, origin);
}

SnapshotHeader read_snapshot_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open");
  return read_snapshot_header(in, path);
}

bool mmap_disabled_by_env() noexcept {
  const char* env = std::getenv("V2V_STORE_NO_MMAP");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void SnapshotBuilder::set_float_matrix(const EmbeddingView& view) {
  V2V_CHECK(view.rows() == rows_ && view.dimensions() == dims_,
            "float matrix shape must match the builder's corpus shape");
  row_stride_ = MatrixF::padded_stride(dims_);
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(rows_ * row_stride_ * sizeof(float)), 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto row = view.row(r);
    std::memcpy(payload.data() + r * row_stride_ * sizeof(float), row.data(),
                dims_ * sizeof(float));
  }
  add_section("fmat", std::move(payload));
}

void SnapshotBuilder::add_section(const std::string& name,
                                  std::vector<std::uint8_t> payload) {
  V2V_CHECK(!name.empty() && name.size() <= kSectionNameBytes,
            "section name must be 1..8 bytes");
  for (const auto& [existing, bytes] : sections_) {
    (void)bytes;
    V2V_CHECK(existing != name, "duplicate section name");
  }
  sections_.emplace_back(name, std::move(payload));
}

void SnapshotBuilder::set_min_version(std::uint32_t version) {
  V2V_CHECK(version <= kSnapshotVersionTrainerState,
            "SnapshotBuilder: version beyond what this build can write");
  min_version_ = std::max(min_version_, version);
}

void SnapshotBuilder::write(const std::string& path) const {
  V2V_CHECK(sections_.size() <= kMaxSections, "too many sections");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open for writing");

  // Lay out payloads: 64-byte aligned, "fmat" placed wherever it appears
  // in add order (set_float_matrix callers add it first in practice).
  const std::uint64_t entries_end =
      kSectionTableOffset + 8 + sections_.size() * kSectionEntryBytes;
  std::uint64_t cursor = align64(entries_end + 8);
  std::vector<SnapshotSection> entries;
  entries.reserve(sections_.size());
  const SnapshotSection* fmat = nullptr;
  for (const auto& [name, payload] : sections_) {
    SnapshotSection s;
    s.name = name;
    s.offset = cursor;
    s.bytes = payload.size();
    s.checksum = fnv1a64(payload.data(), payload.size());
    cursor = align64(cursor + s.bytes);
    entries.push_back(std::move(s));
    if (name == "fmat") fmat = &entries.back();
  }

  SnapshotHeader h;
  h.version = std::max(kSnapshotVersionSections, min_version_);
  h.rows = rows_;
  h.dims = dims_;
  if (fmat != nullptr) {
    h.dtype = kDtypeFloat32;
    h.row_stride = row_stride_;
    h.data_offset = fmat->offset;
    h.data_bytes = fmat->bytes;
    h.data_checksum = fmat->checksum;
  } else {
    h.dtype = kDtypeNone;
    h.row_stride = 0;
    h.data_offset = align64(entries_end + 8);
    h.data_bytes = 0;
    h.data_checksum = 0;
  }

  std::uint8_t header[kHeaderBytes];
  encode_snapshot_header(h, header);
  out.write(reinterpret_cast<const char*>(header), kHeaderBytes);

  // Section table: count + reserved, entries, then the table checksum.
  const std::vector<std::uint8_t> table = encode_section_table(entries);
  out.write(reinterpret_cast<const char*>(table.data()),
            static_cast<std::streamsize>(table.size()));
  const std::uint64_t table_checksum = fnv1a64(table.data(), table.size());
  out.write(reinterpret_cast<const char*>(&table_checksum), 8);

  // Payloads, with zero padding up to each aligned offset.
  std::uint64_t written = entries_end + 8;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::vector<char> pad(
        static_cast<std::size_t>(entries[i].offset - written), 0);
    out.write(pad.data(), static_cast<std::streamsize>(pad.size()));
    const auto& payload = sections_[i].second;
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    written = entries[i].offset + entries[i].bytes;
  }
  out.flush();
  if (!out) fail(SnapshotErrorCode::kOpenFailed, path, "write failed");
}

StreamingSnapshotWriter::StreamingSnapshotWriter(
    const std::string& path, std::vector<std::string> section_names)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      names_(std::move(section_names)) {
  if (!out_) fail(SnapshotErrorCode::kOpenFailed, path_, "cannot open for writing");
  V2V_CHECK(!names_.empty() && names_.size() <= kMaxSections,
            "StreamingSnapshotWriter: need 1..kMaxSections sections");
  for (std::size_t i = 0; i < names_.size(); ++i) {
    V2V_CHECK(!names_[i].empty() && names_[i].size() <= kSectionNameBytes,
              "section name must be 1..8 bytes");
    for (std::size_t j = 0; j < i; ++j) {
      V2V_CHECK(names_[i] != names_[j], "duplicate section name");
    }
  }
  // Reserve the header + table region (rewritten by finish) and pad up to
  // the first payload's 64-byte-aligned offset.
  const std::uint64_t entries_end =
      kSectionTableOffset + 8 + names_.size() * kSectionEntryBytes;
  section_offset_ = align64(entries_end + 8);
  const std::vector<char> zeros(static_cast<std::size_t>(section_offset_), 0);
  out_.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  cursor_ = section_offset_;
}

void StreamingSnapshotWriter::append(const void* data, std::size_t bytes) {
  V2V_CHECK(!finished_, "StreamingSnapshotWriter: append after finish");
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  section_checksum_ = fnv1a64_accumulate(section_checksum_, data, bytes);
  section_bytes_ += bytes;
  cursor_ += bytes;
}

void StreamingSnapshotWriter::seal_current() {
  sealed_.push_back({names_[current_], section_offset_, section_bytes_,
                     section_checksum_});
  const std::uint64_t aligned = align64(cursor_);
  const std::vector<char> pad(static_cast<std::size_t>(aligned - cursor_), 0);
  out_.write(pad.data(), static_cast<std::streamsize>(pad.size()));
  cursor_ = aligned;
  section_offset_ = cursor_;
  section_bytes_ = 0;
  section_checksum_ = fnv1a64_seed();
}

void StreamingSnapshotWriter::next_section() {
  V2V_CHECK(!finished_, "StreamingSnapshotWriter: next_section after finish");
  V2V_CHECK(current_ + 1 < names_.size(),
            "StreamingSnapshotWriter: no more declared sections");
  seal_current();
  ++current_;
}

void StreamingSnapshotWriter::finish(std::uint64_t rows, std::uint64_t dims,
                                     std::uint32_t version) {
  V2V_CHECK(!finished_, "StreamingSnapshotWriter: double finish");
  V2V_CHECK(current_ + 1 == names_.size(),
            "StreamingSnapshotWriter: not every declared section was written");
  V2V_CHECK(version >= kSnapshotVersionSections &&
                version <= kSnapshotVersionTrainerState,
            "StreamingSnapshotWriter: sections need a v2+ version");
  seal_current();
  finished_ = true;

  const std::uint64_t entries_end =
      kSectionTableOffset + 8 + names_.size() * kSectionEntryBytes;
  SnapshotHeader h;
  h.version = version;
  h.dtype = kDtypeNone;
  h.rows = rows;
  h.dims = dims;
  h.row_stride = 0;
  h.data_offset = align64(entries_end + 8);
  h.data_bytes = 0;
  h.data_checksum = 0;

  std::uint8_t header[kHeaderBytes];
  encode_snapshot_header(h, header);
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(header), kHeaderBytes);
  const std::vector<std::uint8_t> table = encode_section_table(sealed_);
  out_.write(reinterpret_cast<const char*>(table.data()),
             static_cast<std::streamsize>(table.size()));
  const std::uint64_t table_checksum = fnv1a64(table.data(), table.size());
  out_.write(reinterpret_cast<const char*>(&table_checksum), 8);
  out_.flush();
  if (!out_) fail(SnapshotErrorCode::kOpenFailed, path_, "write failed");
}

MappedSnapshot MappedSnapshot::open(const std::string& path, MapMode mode) {
  const SnapshotHeader h = read_snapshot_header(path);

  MappedSnapshot out;
  out.header_ = h;

  std::uint64_t file_size = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open");
    file_size = static_cast<std::uint64_t>(in.tellg());
  }
  out.file_bytes_ = static_cast<std::size_t>(file_size);

#if V2V_STORE_HAS_MMAP
  if (mode == MapMode::kAuto && !mmap_disabled_by_env() && file_size > 0) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      void* base =
          ::mmap(nullptr, out.file_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (base != MAP_FAILED) {
        out.map_base_ = base;
        out.map_bytes_ = out.file_bytes_;
      }
    }
  }
#endif
  if (out.map_base_ == nullptr) {
    std::ifstream in(path, std::ios::binary);
    if (!in) fail(SnapshotErrorCode::kOpenFailed, path, "cannot open");
    out.buffer_.resize(out.file_bytes_);
    if (!out.buffer_.empty()) {
      in.read(reinterpret_cast<char*>(out.buffer_.data()),
              static_cast<std::streamsize>(out.buffer_.size()));
      if (!in) fail(SnapshotErrorCode::kTruncatedData, path, "short file read");
    }
  }

  out.sections_ = parse_section_table(out.base(), file_size, h, path);
  for (const auto& s : out.sections_) {
    const std::uint64_t checksum =
        fnv1a64(out.base() + s.offset, static_cast<std::size_t>(s.bytes));
    if (checksum != s.checksum) {
      fail(SnapshotErrorCode::kSectionChecksumMismatch, path,
           "section '" + s.name + "' checksum mismatch");
    }
  }
  return out;
}

bool MappedSnapshot::has_section(const std::string& name) const noexcept {
  for (const auto& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

std::span<const std::uint8_t> MappedSnapshot::section(
    const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) {
      return {base() + s.offset, static_cast<std::size_t>(s.bytes)};
    }
  }
  fail(SnapshotErrorCode::kBadHeader, "<mapped>",
       "section '" + name + "' not present");
}

EmbeddingView MappedSnapshot::float_view() const noexcept {
  V2V_CHECK(has_floats(), "snapshot carries no float matrix");
  const auto* data =
      reinterpret_cast<const float*>(base() + header_.data_offset);
  return EmbeddingView(data, header_.rows, header_.dims, header_.row_stride);
}

const std::uint8_t* MappedSnapshot::base() const noexcept {
  return map_base_ != nullptr ? static_cast<const std::uint8_t*>(map_base_)
                              : buffer_.data();
}

MappedSnapshot::MappedSnapshot(MappedSnapshot&& other) noexcept
    : header_(other.header_),
      sections_(std::move(other.sections_)),
      map_base_(std::exchange(other.map_base_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      buffer_(std::move(other.buffer_)),
      file_bytes_(std::exchange(other.file_bytes_, 0)) {}

MappedSnapshot& MappedSnapshot::operator=(MappedSnapshot&& other) noexcept {
  if (this != &other) {
    reset();
    header_ = other.header_;
    sections_ = std::move(other.sections_);
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    buffer_ = std::move(other.buffer_);
    file_bytes_ = std::exchange(other.file_bytes_, 0);
  }
  return *this;
}

MappedSnapshot::~MappedSnapshot() { reset(); }

void MappedSnapshot::reset() noexcept {
#if V2V_STORE_HAS_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_bytes_);
#endif
  map_base_ = nullptr;
  map_bytes_ = 0;
  buffer_.clear();
  sections_.clear();
}

}  // namespace v2v::store
