// Non-owning, read-only view of an embedding matrix: `rows` vectors of
// `dims` floats whose row starts are `stride` floats apart. This is the
// currency between the storage layer and the index layer — a FlatIndex or
// IvfIndex built over a view serves an in-memory embed::Embedding, a plain
// MatrixF, and a zero-copy MappedEmbedding snapshot identically. The
// backing storage must outlive every view onto it.
#pragma once

#include <cstddef>
#include <span>

#include "v2v/common/check.hpp"
#include "v2v/common/matrix.hpp"

namespace v2v::store {

class EmbeddingView {
 public:
  EmbeddingView() = default;
  EmbeddingView(const float* data, std::size_t rows, std::size_t dims,
                std::size_t stride) noexcept
      : data_(data), rows_(rows), dims_(dims), stride_(stride) {
    V2V_CHECK(stride_ >= dims_, "EmbeddingView: stride < dims");
  }

  [[nodiscard]] static EmbeddingView of(const MatrixF& m) noexcept {
    return {m.data(), m.rows(), m.cols(), m.stride()};
  }
  /// Anything exposing a MatrixF via .matrix() (embed::Embedding in
  /// practice — templated so this header stays below the embed layer).
  template <typename E>
  [[nodiscard]] static EmbeddingView of(const E& e) noexcept {
    return of(e.matrix());
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t dimensions() const noexcept { return dims_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }
  [[nodiscard]] const float* data() const noexcept { return data_; }

  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    V2V_BOUNDS(r, rows_);
    return {data_ + r * stride_, dims_};
  }

 private:
  const float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t dims_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace v2v::store
