// Optimizer-state persistence for warm-start training continuation
// (snapshot v3).
//
// A resume-capable snapshot carries three extra sections on top of the
// embedding ("fmat"):
//
//   "tsyn1"  rows u64, dims u64, then rows*dims f32 (dense, unpadded) —
//            the output layer (HS inner nodes or NS per-vertex vectors)
//   "tfreq"  count u64, then count u64 frequencies — the profile the
//            objective was built from (load-bearing under HS: the
//            Huffman tree is rebuilt from it verbatim)
//   "tlrst"  one fixed 128-byte little-endian block of learning-rate
//            and config state (see trainer_state.cpp for the layout)
//
// All three ride the v2 section machinery (64-byte aligned, FNV-1a
// checksummed, verified on open); attaching them stamps the header
// version to kSnapshotVersionTrainerState so pre-v3 readers reject the
// file loudly instead of silently dropping the optimizer state.
#pragma once

#include <string>

#include "v2v/embed/trainer.hpp"
#include "v2v/store/snapshot.hpp"

namespace v2v::store {

inline constexpr char kSectionTrainerSyn1[] = "tsyn1";
inline constexpr char kSectionTrainerFreq[] = "tfreq";
inline constexpr char kSectionTrainerLrState[] = "tlrst";

/// True when `snap` carries all three trainer-state sections.
[[nodiscard]] bool has_trainer_state(const MappedSnapshot& snap) noexcept;

/// Attaches the checkpoint as v3 sections (and bumps the builder's
/// minimum version to kSnapshotVersionTrainerState).
void add_trainer_state(SnapshotBuilder& builder,
                       const embed::TrainerCheckpoint& checkpoint);

/// Decodes the trainer state; throws SnapshotError(kBadHeader) when a
/// section is missing or malformed (section checksums were already
/// verified by MappedSnapshot::open).
[[nodiscard]] embed::TrainerCheckpoint load_trainer_state(
    const MappedSnapshot& snap);

/// Human-readable classification of a section name for `info`-style
/// listings: "float matrix", "quantized payload", "optimizer state", or
/// "unknown".
[[nodiscard]] const char* section_kind(const std::string& name) noexcept;

}  // namespace v2v::store
