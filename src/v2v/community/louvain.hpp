// Louvain modularity optimization (Blondel et al. 2008). Not in the
// paper's Table I, but included as the scalable graph-based reference the
// paper's §VII ("experiments on larger scale networks") points toward; the
// ablation bench uses it to extend the runtime comparison beyond CNM/GN.
#pragma once

#include <cstdint>
#include <vector>

#include "v2v/graph/graph.hpp"

namespace v2v::community {

struct LouvainConfig {
  std::size_t max_passes = 20;       ///< local-move sweeps per level
  std::size_t max_levels = 32;       ///< coarsening levels
  double min_gain = 1e-9;            ///< stop a level when total gain is below
  std::uint64_t seed = 1;            ///< vertex visiting order shuffle
};

struct LouvainResult {
  std::vector<std::uint32_t> labels;
  std::size_t community_count = 0;
  double modularity = 0.0;
  std::size_t levels = 0;
};

[[nodiscard]] LouvainResult cluster_louvain(const graph::Graph& g,
                                            const LouvainConfig& config = {});

}  // namespace v2v::community
