#include "v2v/community/louvain.hpp"

#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "v2v/common/rng.hpp"
#include "v2v/community/modularity.hpp"

namespace v2v::community {
namespace {

/// Weighted adjacency in plain vectors; rebuilt at each coarsening level.
struct LevelGraph {
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adjacency;
  std::vector<double> self_loop;  // intra weight kept on coarse vertices
  double total_weight = 0.0;      // sum of edge weights (m)

  [[nodiscard]] std::size_t size() const { return adjacency.size(); }
};

LevelGraph from_graph(const graph::Graph& g) {
  LevelGraph lg;
  lg.adjacency.resize(g.vertex_count());
  lg.self_loop.assign(g.vertex_count(), 0.0);
  for (graph::VertexId u = 0; u < g.vertex_count(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.arc_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double w = wts.empty() ? 1.0 : wts[i];
      if (nbrs[i] == u) {
        lg.self_loop[u] += w;  // each self arc appears once per CSR entry
      } else {
        lg.adjacency[u].emplace_back(nbrs[i], w);
      }
    }
  }
  lg.total_weight = g.total_edge_weight();
  return lg;
}

struct LevelOutcome {
  std::vector<std::uint32_t> assignment;  // community per (coarse) vertex
  double gain = 0.0;
};

LevelOutcome one_level(const LevelGraph& lg, const LouvainConfig& config, Rng& rng) {
  const std::size_t n = lg.size();
  const double two_m = 2.0 * lg.total_weight;
  LevelOutcome out;
  out.assignment.resize(n);
  std::iota(out.assignment.begin(), out.assignment.end(), 0u);
  if (two_m <= 0.0) return out;

  std::vector<double> degree(n, 0.0);       // weighted degree per vertex
  std::vector<double> community_total(n);   // sum of degrees per community
  for (std::size_t u = 0; u < n; ++u) {
    degree[u] = 2.0 * lg.self_loop[u];
    for (const auto& [v, w] : lg.adjacency[u]) degree[u] += w;
    community_total[u] = degree[u];
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);

  std::unordered_map<std::uint32_t, double> weight_to;  // community -> w(u, c)
  for (std::size_t pass = 0; pass < config.max_passes; ++pass) {
    double pass_gain = 0.0;
    for (const std::size_t u : order) {
      const std::uint32_t current = out.assignment[u];
      weight_to.clear();
      weight_to[current] += 0.0;
      for (const auto& [v, w] : lg.adjacency[u]) {
        weight_to[out.assignment[v]] += w;
      }

      community_total[current] -= degree[u];
      const double base = weight_to[current];

      // Net modularity change of moving u from `current` (u already
      // removed from its total) into community c:
      //   dQ = (w_uc - w_u,current) / m - deg_u (tot_c - tot_current) / 2m^2
      std::uint32_t best = current;
      double best_gain = 0.0;
      for (const auto& [c, w_uc] : weight_to) {
        const double net =
            (w_uc - base) / lg.total_weight -
            degree[u] * (community_total[c] - community_total[current]) /
                (two_m * lg.total_weight);
        if (net > best_gain + 1e-15) {
          best_gain = net;
          best = c;
        }
      }

      community_total[best] += degree[u];
      if (best != current) {
        out.assignment[u] = best;
        pass_gain += best_gain;
      }
    }
    out.gain += pass_gain;
    if (pass_gain < config.min_gain) break;
  }
  return out;
}

LevelGraph coarsen(const LevelGraph& lg, const std::vector<std::uint32_t>& assignment,
                   std::size_t community_count) {
  LevelGraph coarse;
  coarse.adjacency.resize(community_count);
  coarse.self_loop.assign(community_count, 0.0);
  coarse.total_weight = lg.total_weight;

  std::vector<std::unordered_map<std::uint32_t, double>> agg(community_count);
  for (std::size_t u = 0; u < lg.size(); ++u) {
    const std::uint32_t cu = assignment[u];
    coarse.self_loop[cu] += lg.self_loop[u];
    for (const auto& [v, w] : lg.adjacency[u]) {
      const std::uint32_t cv = assignment[v];
      if (cu == cv) {
        coarse.self_loop[cu] += w / 2.0;  // each intra edge appears twice
      } else {
        agg[cu][cv] += w;
      }
    }
  }
  for (std::size_t c = 0; c < community_count; ++c) {
    coarse.adjacency[c].assign(agg[c].begin(), agg[c].end());
  }
  return coarse;
}

}  // namespace

LouvainResult cluster_louvain(const graph::Graph& g, const LouvainConfig& config) {
  if (g.directed()) throw std::invalid_argument("louvain: undirected graph required");
  const std::size_t n = g.vertex_count();
  LouvainResult result;
  result.labels.resize(n);
  std::iota(result.labels.begin(), result.labels.end(), 0u);
  if (n == 0) {
    return result;
  }

  Rng rng(config.seed);
  LevelGraph lg = from_graph(g);

  for (std::size_t level = 0; level < config.max_levels; ++level) {
    LevelOutcome outcome = one_level(lg, config, rng);
    std::vector<std::uint32_t> assignment = outcome.assignment;
    const std::size_t communities = compact_labels(assignment);
    ++result.levels;

    // Map original vertices through this level's assignment.
    for (auto& label : result.labels) label = assignment[label];

    if (communities == lg.size() || outcome.gain < config.min_gain) break;
    lg = coarsen(lg, assignment, communities);
  }

  result.community_count = compact_labels(result.labels);
  result.modularity = modularity(g, result.labels);
  return result;
}

}  // namespace v2v::community
