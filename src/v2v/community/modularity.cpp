#include "v2v/community/modularity.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace v2v::community {

double modularity(const graph::Graph& g, std::span<const std::uint32_t> labels) {
  if (g.directed()) {
    throw std::invalid_argument("modularity: undirected graph required");
  }
  if (labels.size() != g.vertex_count()) {
    throw std::invalid_argument("modularity: label vector size mismatch");
  }
  const double two_m = 2.0 * g.total_edge_weight();
  if (two_m <= 0.0) return 0.0;

  // intra[c]  = total weight of arcs inside community c (2x edge weight)
  // degree[c] = total weighted degree of community c
  std::unordered_map<std::uint32_t, double> intra, degree;
  for (graph::VertexId u = 0; u < g.vertex_count(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.arc_weights(u);
    double du = 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double w = wts.empty() ? 1.0 : wts[i];
      du += w;
      if (labels[u] == labels[nbrs[i]]) intra[labels[u]] += w;
    }
    degree[labels[u]] += du;
  }
  double q = 0.0;
  for (const auto& [c, deg] : degree) {
    const double in = intra.count(c) ? intra.at(c) : 0.0;
    q += in / two_m - (deg / two_m) * (deg / two_m);
  }
  return q;
}

std::size_t compact_labels(std::span<std::uint32_t> labels) {
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  for (auto& label : labels) {
    const auto [it, inserted] =
        remap.emplace(label, static_cast<std::uint32_t>(remap.size()));
    label = it->second;
  }
  return remap.size();
}

}  // namespace v2v::community
