// Clauset–Newman–Moore greedy modularity maximization ("Finding community
// structure in very large networks", Phys. Rev. E 70, 2004) — the paper's
// first graph-based baseline (Table I).
//
// Every vertex starts as its own community; at each step the pair of
// connected communities with the largest modularity gain
//   dQ(i, j) = w_ij / m - 2 a_i a_j,   a_i = deg(i) / 2m
// is merged. Merging stops when the best gain is non-positive (or when
// everything has merged). Implementation: per-community neighbor maps plus
// a lazy max-heap with community version stamps, giving the classic
// O(m d log n) behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "v2v/graph/graph.hpp"

namespace v2v::community {

struct CnmResult {
  std::vector<std::uint32_t> labels;  ///< dense community ids per vertex
  std::size_t community_count = 0;
  double modularity = 0.0;            ///< Q of the returned partition
  std::size_t merges = 0;
};

/// Runs CNM on an undirected (optionally weighted) graph.
[[nodiscard]] CnmResult cluster_cnm(const graph::Graph& g);

}  // namespace v2v::community
