// Asynchronous label propagation (Raghavan et al. 2007). A fast, simple
// extension baseline: every vertex repeatedly adopts the most frequent
// label among its neighbors until a fixed point (or the iteration cap).
#pragma once

#include <cstdint>
#include <vector>

#include "v2v/graph/graph.hpp"

namespace v2v::community {

struct LabelPropagationConfig {
  std::size_t max_iterations = 100;
  std::uint64_t seed = 1;  ///< update order shuffle + tie breaking
};

struct LabelPropagationResult {
  std::vector<std::uint32_t> labels;
  std::size_t community_count = 0;
  std::size_t iterations = 0;
  bool converged = false;
};

[[nodiscard]] LabelPropagationResult cluster_label_propagation(
    const graph::Graph& g, const LabelPropagationConfig& config = {});

}  // namespace v2v::community
