#include "v2v/community/cnm.hpp"

#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "v2v/community/modularity.hpp"

namespace v2v::community {
namespace {

struct HeapEntry {
  double gain;
  std::uint32_t i, j;
  std::uint32_t version_i, version_j;
  bool operator<(const HeapEntry& other) const { return gain < other.gain; }
};

}  // namespace

CnmResult cluster_cnm(const graph::Graph& g) {
  if (g.directed()) throw std::invalid_argument("cnm: undirected graph required");
  const std::size_t n = g.vertex_count();
  CnmResult result;
  result.labels.assign(n, 0);
  if (n == 0) return result;

  const double m = g.total_edge_weight();
  if (m <= 0.0) {
    // Edgeless: every vertex its own community.
    for (std::size_t v = 0; v < n; ++v) result.labels[v] = static_cast<std::uint32_t>(v);
    result.community_count = n;
    return result;
  }

  // Community state. `parent` implements union-find with path halving so
  // final labels can be resolved; `weight_to` maps community -> w_ij
  // (total edge weight between the two communities).
  std::vector<std::uint32_t> parent(n);
  std::vector<std::uint32_t> version(n, 0);
  std::vector<double> a(n, 0.0);  // degree fraction
  std::vector<bool> alive(n, true);
  std::vector<std::unordered_map<std::uint32_t, double>> weight_to(n);
  for (std::uint32_t v = 0; v < n; ++v) parent[v] = v;

  auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  const double two_m = 2.0 * m;
  for (graph::VertexId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.arc_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::VertexId v = nbrs[i];
      const double w = wts.empty() ? 1.0 : wts[i];
      a[u] += w / two_m;
      if (v != u) weight_to[u][v] += w;  // self-loops do not create pairs
    }
  }

  auto gain = [&](std::uint32_t i, std::uint32_t j, double w_ij) {
    return w_ij / m - 2.0 * a[i] * a[j];
  };

  std::priority_queue<HeapEntry> heap;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const auto& [v, w] : weight_to[u]) {
      if (u < v) heap.push({gain(u, v, w), u, v, 0, 0});
    }
  }

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const std::uint32_t i = top.i, j = top.j;
    if (!alive[i] || !alive[j]) continue;
    if (version[i] != top.version_i || version[j] != top.version_j) continue;
    if (top.gain <= 0.0) break;  // no positive merge remains

    // Merge j into i (keep the one with the bigger neighbor map to bound
    // total map-move work).
    const std::uint32_t keep = weight_to[i].size() >= weight_to[j].size() ? i : j;
    const std::uint32_t drop = keep == i ? j : i;
    alive[drop] = false;
    parent[drop] = keep;
    a[keep] += a[drop];
    ++version[keep];
    ++result.merges;

    weight_to[keep].erase(drop);
    for (const auto& [k, w] : weight_to[drop]) {
      if (k == keep || !alive[k]) continue;
      weight_to[keep][k] += w;
      weight_to[k].erase(drop);
      weight_to[k][keep] = weight_to[keep][k];
    }
    weight_to[drop].clear();

    // Only pairs touching `keep` changed; everything else keeps its gain.
    // Stale (keep, k) heap entries die on the version[keep] check.
    for (const auto& [k, w] : weight_to[keep]) {
      if (!alive[k]) continue;
      heap.push({gain(keep, k, w), keep, k, version[keep], version[k]});
    }
  }

  for (std::uint32_t v = 0; v < n; ++v) result.labels[v] = find(v);
  result.community_count = compact_labels(result.labels);
  result.modularity = modularity(g, result.labels);
  return result;
}

}  // namespace v2v::community
