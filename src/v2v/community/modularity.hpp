// Newman modularity Q of a vertex partition, for undirected (optionally
// weighted) graphs:
//   Q = (1/2m) * sum_{u,v} [A_uv - d_u d_v / 2m] * delta(c_u, c_v)
// Self-loops are handled per the standard convention (they contribute
// their full weight to A_vv and twice to the degree).
#pragma once

#include <cstdint>
#include <span>

#include "v2v/graph/graph.hpp"

namespace v2v::community {

/// Computes Q for the given labels. Requires an undirected graph; throws
/// std::invalid_argument otherwise. Returns 0 for an edgeless graph.
[[nodiscard]] double modularity(const graph::Graph& g,
                                std::span<const std::uint32_t> labels);

/// Relabels cluster ids to a dense range [0, k) preserving order of first
/// appearance; returns the number of distinct labels.
std::size_t compact_labels(std::span<std::uint32_t> labels);

}  // namespace v2v::community
