#include "v2v/community/label_propagation.hpp"

#include <numeric>
#include <unordered_map>

#include "v2v/common/rng.hpp"
#include "v2v/community/modularity.hpp"

namespace v2v::community {

LabelPropagationResult cluster_label_propagation(const graph::Graph& g,
                                                 const LabelPropagationConfig& config) {
  const std::size_t n = g.vertex_count();
  LabelPropagationResult result;
  result.labels.resize(n);
  std::iota(result.labels.begin(), result.labels.end(), 0u);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  Rng rng(config.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);

  std::unordered_map<std::uint32_t, double> tally;
  std::vector<std::uint32_t> ties;
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    rng.shuffle(order);
    bool changed = false;
    for (const std::size_t u : order) {
      const auto nbrs = g.neighbors(u);
      if (nbrs.empty()) continue;
      const auto wts = g.arc_weights(static_cast<graph::VertexId>(u));
      tally.clear();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        tally[result.labels[nbrs[i]]] += wts.empty() ? 1.0 : wts[i];
      }
      double best = -1.0;
      ties.clear();
      for (const auto& [label, weight] : tally) {
        if (weight > best + 1e-12) {
          best = weight;
          ties.assign(1, label);
        } else if (weight > best - 1e-12) {
          ties.push_back(label);
        }
      }
      const std::uint32_t pick = ties[rng.next_below(ties.size())];
      if (pick != result.labels[u]) {
        result.labels[u] = pick;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed) {
      result.converged = true;
      break;
    }
  }

  result.community_count = compact_labels(result.labels);
  return result;
}

}  // namespace v2v::community
