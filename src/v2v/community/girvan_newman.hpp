// Girvan–Newman divisive community detection ("Community structure in
// social and biological networks", PNAS 99, 2002) — the paper's second
// graph-based baseline (Table I).
//
// Repeatedly: compute edge betweenness with Brandes' algorithm, remove the
// highest-betweenness edge, and record the modularity of the resulting
// connected-component partition. The returned partition is the one with
// the highest modularity seen along the removal sequence. Worst case
// O(n m^2) — exactly the cost profile Table I demonstrates.
#pragma once

#include <cstdint>
#include <vector>

#include "v2v/graph/graph.hpp"

namespace v2v::community {

struct GirvanNewmanConfig {
  /// Stop after this many consecutive edge removals without a modularity
  /// improvement; 0 runs the full dendrogram (every edge removed).
  std::size_t patience = 0;
  /// Hard cap on edge removals (0 = no cap). Useful to bound runtime.
  std::size_t max_removals = 0;
};

struct GirvanNewmanResult {
  std::vector<std::uint32_t> labels;
  std::size_t community_count = 0;
  double modularity = 0.0;
  std::size_t edges_removed = 0;  ///< removals performed before stopping
};

/// Runs Girvan–Newman on an undirected, unweighted graph (edge weights are
/// ignored for the shortest-path computation, as in the original).
[[nodiscard]] GirvanNewmanResult cluster_girvan_newman(
    const graph::Graph& g, const GirvanNewmanConfig& config = {});

/// Brandes edge betweenness for an adjacency-list graph; exposed for
/// testing. `adjacency[u]` lists (neighbor, edge_id); betweenness is
/// accumulated per edge_id. Unreachable pairs contribute nothing.
[[nodiscard]] std::vector<double> edge_betweenness(
    const std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>& adjacency,
    std::size_t edge_count);

}  // namespace v2v::community
