#include "v2v/community/girvan_newman.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "v2v/community/modularity.hpp"

namespace v2v::community {

std::vector<double> edge_betweenness(
    const std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>& adjacency,
    std::size_t edge_count) {
  const std::size_t n = adjacency.size();
  std::vector<double> betweenness(edge_count, 0.0);

  // Brandes (unweighted): BFS from every source, then dependency
  // accumulation in reverse BFS order, attributing flow to edges.
  std::vector<std::int64_t> distance(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<std::uint32_t> order;
  order.reserve(n);

  for (std::uint32_t s = 0; s < n; ++s) {
    std::fill(distance.begin(), distance.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();

    distance[s] = 0;
    sigma[s] = 1.0;
    std::deque<std::uint32_t> queue{s};
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop_front();
      order.push_back(u);
      for (const auto& [v, edge] : adjacency[u]) {
        if (distance[v] < 0) {
          distance[v] = distance[u] + 1;
          queue.push_back(v);
        }
        if (distance[v] == distance[u] + 1) sigma[v] += sigma[u];
      }
    }

    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::uint32_t w = *it;
      for (const auto& [v, edge] : adjacency[w]) {
        // Predecessor relation: v precedes w when dist(v) + 1 == dist(w).
        if (distance[v] + 1 == distance[w]) {
          const double c = sigma[v] / sigma[w] * (1.0 + delta[w]);
          betweenness[edge] += c;
          delta[v] += c;
        }
      }
    }
  }
  // Each undirected pair (s, t) was counted from both endpoints.
  for (auto& b : betweenness) b /= 2.0;
  return betweenness;
}

GirvanNewmanResult cluster_girvan_newman(const graph::Graph& g,
                                         const GirvanNewmanConfig& config) {
  if (g.directed()) {
    throw std::invalid_argument("girvan-newman: undirected graph required");
  }
  const std::size_t n = g.vertex_count();
  GirvanNewmanResult result;
  result.labels.assign(n, 0);
  if (n == 0) return result;

  // Mutable adjacency with stable edge ids so edges can be removed.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adjacency(n);
  std::size_t edge_count = 0;
  for (graph::VertexId u = 0; u < n; ++u) {
    for (const graph::VertexId v : g.neighbors(u)) {
      if (v < u) continue;
      const auto id = static_cast<std::uint32_t>(edge_count++);
      adjacency[u].emplace_back(v, id);
      if (v != u) adjacency[v].emplace_back(u, id);
    }
  }

  auto components_as_labels = [&] {
    std::vector<std::uint32_t> labels(n, UINT32_MAX);
    std::uint32_t next = 0;
    std::deque<std::uint32_t> queue;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (labels[s] != UINT32_MAX) continue;
      labels[s] = next;
      queue.push_back(s);
      while (!queue.empty()) {
        const std::uint32_t u = queue.front();
        queue.pop_front();
        for (const auto& [v, edge] : adjacency[u]) {
          if (labels[v] == UINT32_MAX) {
            labels[v] = next;
            queue.push_back(v);
          }
        }
      }
      ++next;
    }
    return labels;
  };

  // Track the best-modularity partition along the removal sequence.
  result.labels = components_as_labels();
  result.modularity = modularity(g, result.labels);
  std::size_t since_improvement = 0;
  std::size_t remaining = edge_count;

  while (remaining > 0) {
    if (config.max_removals > 0 && result.edges_removed >= config.max_removals) break;
    if (config.patience > 0 && since_improvement >= config.patience) break;

    const auto betweenness = edge_betweenness(adjacency, edge_count);
    std::uint32_t worst_edge = UINT32_MAX;
    double worst_value = -1.0;
    for (std::uint32_t u = 0; u < n; ++u) {
      for (const auto& [v, edge] : adjacency[u]) {
        if (betweenness[edge] > worst_value) {
          worst_value = betweenness[edge];
          worst_edge = edge;
        }
      }
    }
    if (worst_edge == UINT32_MAX) break;

    for (auto& nbrs : adjacency) {
      std::erase_if(nbrs, [worst_edge](const auto& e) { return e.second == worst_edge; });
    }
    --remaining;
    ++result.edges_removed;

    auto labels = components_as_labels();
    const double q = modularity(g, labels);
    if (q > result.modularity) {
      result.modularity = q;
      result.labels = std::move(labels);
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
  }

  result.community_count = compact_labels(result.labels);
  return result;
}

}  // namespace v2v::community
